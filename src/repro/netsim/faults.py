"""Deterministic, seed-driven fault injection against the sim kernel.

The paper's architecture is judged by how it behaves when the network
misbehaves: routes change "from a terrestrial link to a satellite link"
(§4.1.2), error characteristics shift between media (§2.1(B)), and queue
overflow at intermediate nodes is the congestion signal (§3(C)).  This
module makes those events *first-class, reproducible experiment inputs*:

* a :class:`Fault` is one declarative event (what, where, when, how long);
* a :class:`FaultSchedule` is an ordered list of faults, built explicitly
  or drawn from a seeded RNG (:meth:`FaultSchedule.random`) so chaos runs
  are exactly repeatable — identical seed + schedule ⇒ identical traces;
* a :class:`FaultInjector` arms a schedule on a simulator and executes it
  against a :class:`~repro.netsim.network.Network`, recording an ordered
  ``trace`` of (time, phase, kind, target) tuples and emitting UNITES
  ``fault:inject`` / ``fault:clear`` instants plus per-fault spans so
  timelines show exactly when chaos happened.

Reversible faults restore the *original* characteristic captured at
injection time (not a schedule-time copy), so overlapping schedules on
different links compose; overlapping faults on the *same* link and kind
are rejected up front rather than silently last-writer-wins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

# the fault vocabulary ------------------------------------------------------
LINK_FLAP = "link-flap"          # link down for ``duration``, then back up
NODE_CRASH = "node-crash"        # every up link at the node goes down
PARTITION = "partition"          # cut all links between target set and rest
BANDWIDTH = "bandwidth"          # multiply channel rate by ``param`` (< 1)
BER_STORM = "ber-storm"          # set bit-error rate to ``param``
QUEUE_SQUEEZE = "queue-squeeze"  # clamp queue capacity to ``param`` frames

KINDS = frozenset(
    {LINK_FLAP, NODE_CRASH, PARTITION, BANDWIDTH, BER_STORM, QUEUE_SQUEEZE}
)

#: kinds targeting a directed/bidirected link pair ``(a, b)``
_LINK_KINDS = frozenset({LINK_FLAP, BANDWIDTH, BER_STORM, QUEUE_SQUEEZE})


@dataclass(frozen=True)
class Fault:
    """One declarative fault event.

    ``target`` is a tuple: ``(a, b)`` for link-scoped kinds, ``(node,)``
    for node crashes, and the sorted member tuple of one side of the cut
    for partitions.  ``duration`` may be ``math.inf`` for a permanent
    fault (never cleared).  ``param`` carries the kind-specific knob.
    """

    kind: str
    at: float
    duration: float
    target: Tuple[str, ...]
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time cannot be negative")
        if not self.duration > 0:
            raise ValueError("fault duration must be positive (inf = permanent)")
        if self.kind in _LINK_KINDS and len(self.target) != 2:
            raise ValueError(f"{self.kind} targets a link pair (a, b)")
        if self.kind == NODE_CRASH and len(self.target) != 1:
            raise ValueError("node-crash targets a single node")
        if self.kind == BANDWIDTH and not (self.param and 0 < self.param):
            raise ValueError("bandwidth fault needs a positive rate factor")
        if self.kind == BER_STORM and not (self.param is not None and 0 <= self.param < 1):
            raise ValueError("ber-storm needs a BER in [0, 1)")
        if self.kind == QUEUE_SQUEEZE and not (self.param and self.param >= 1):
            raise ValueError("queue-squeeze needs a capacity >= 1")

    @property
    def clears_at(self) -> float:
        return self.at + self.duration

    def describe(self) -> str:
        tgt = "|".join(self.target)
        return f"{self.kind}@{tgt}"


class FaultSchedule:
    """An ordered, validated list of faults.

    Construction order does not matter; faults execute in ``(at, insertion)``
    order.  Overlapping same-kind faults on the same target are rejected so
    restoration is always well-defined.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: List[Fault] = sorted(
            faults, key=lambda f: f.at
        )
        self._check_overlaps()

    def _check_overlaps(self) -> None:
        open_until: Dict[Tuple[str, Tuple[str, ...]], float] = {}
        for f in self.faults:
            key = (f.kind, f.target)
            if key in open_until and f.at < open_until[key]:
                raise ValueError(
                    f"overlapping {f.kind} faults on {f.target} "
                    f"(restore order would be ambiguous)"
                )
            open_until[key] = f.clears_at

    # ------------------------------------------------------------------
    # fluent builders
    # ------------------------------------------------------------------
    def add(self, fault: Fault) -> "FaultSchedule":
        self.faults.append(fault)
        self.faults.sort(key=lambda f: f.at)
        self._check_overlaps()
        return self

    def link_flap(self, at: float, a: str, b: str, duration: float = math.inf) -> "FaultSchedule":
        return self.add(Fault(LINK_FLAP, at, duration, (a, b)))

    def node_crash(self, at: float, node: str, duration: float = math.inf) -> "FaultSchedule":
        return self.add(Fault(NODE_CRASH, at, duration, (node,)))

    def partition(self, at: float, group: Iterable[str], duration: float = math.inf) -> "FaultSchedule":
        return self.add(Fault(PARTITION, at, duration, tuple(sorted(group))))

    def bandwidth_collapse(
        self, at: float, a: str, b: str, factor: float, duration: float = math.inf
    ) -> "FaultSchedule":
        return self.add(Fault(BANDWIDTH, at, duration, (a, b), factor))

    def ber_storm(
        self, at: float, a: str, b: str, ber: float, duration: float = math.inf
    ) -> "FaultSchedule":
        return self.add(Fault(BER_STORM, at, duration, (a, b), ber))

    def queue_squeeze(
        self, at: float, a: str, b: str, limit: int, duration: float = math.inf
    ) -> "FaultSchedule":
        return self.add(Fault(QUEUE_SQUEEZE, at, duration, (a, b), limit))

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        links: Sequence[Tuple[str, str]],
        horizon: float,
        n_faults: int = 6,
        kinds: Optional[Sequence[str]] = None,
        min_duration: float = 0.05,
        max_duration: float = 0.5,
    ) -> "FaultSchedule":
        """Draw a reproducible schedule from its own seeded RNG.

        The RNG is private to the schedule (``random.Random(seed)``), so
        generating one never perturbs the simulation's named streams —
        the same seed yields the same schedule on every machine and run.
        Only link-scoped reversible kinds are drawn by default; crashes
        and partitions are destructive enough that tests opt in.
        """
        rng = random.Random(seed)
        pool = list(kinds) if kinds else [LINK_FLAP, BANDWIDTH, BER_STORM, QUEUE_SQUEEZE]
        ordered_links = sorted(set(tuple(sorted(lk)) for lk in links))
        if not ordered_links:
            raise ValueError("need at least one link to schedule faults on")
        faults: List[Fault] = []
        attempts = 0
        while len(faults) < n_faults and attempts < n_faults * 20:
            attempts += 1
            kind = rng.choice(pool)
            a, b = rng.choice(ordered_links)
            at = round(rng.uniform(0.0, horizon), 6)
            duration = round(rng.uniform(min_duration, max_duration), 6)
            param: Optional[float] = None
            if kind == BANDWIDTH:
                param = round(rng.uniform(0.05, 0.5), 6)
            elif kind == BER_STORM:
                param = round(10.0 ** rng.uniform(-5.0, -3.5), 10)
            elif kind == QUEUE_SQUEEZE:
                param = rng.randint(1, 4)
            candidate = Fault(kind, at, duration, (a, b), param)
            try:
                cls(faults + [candidate])
            except ValueError:
                continue  # overlapped an earlier draw; redraw
            faults.append(candidate)
        return cls(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {len(self.faults)} faults>"


@dataclass
class _ActiveFault:
    """Inject-time restoration state for one executing fault."""

    fault: Fault
    sim_start: float
    restore_pairs: List[Tuple[str, str]] = field(default_factory=list)
    saved: Dict[Tuple[str, str], float] = field(default_factory=dict)


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a network.

    ``trace`` is the determinism contract: an ordered list of
    ``(sim_time, phase, kind, target, param)`` tuples, one per inject and
    clear, suitable for exact equality assertions across runs.
    """

    def __init__(self, sim: Simulator, network: Network, schedule: FaultSchedule) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.trace: List[Tuple[float, str, str, Tuple[str, ...], Optional[float]]] = []
        self.injected = 0
        self.cleared = 0
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every fault relative to the current sim time."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        for fault in self.schedule:
            if fault.at < self.sim.now:
                raise ValueError(f"fault at t={fault.at} is already in the past")
            self.sim.schedule(fault.at - self.sim.now, self._inject, fault)
        return self

    # ------------------------------------------------------------------
    def _pairs(self, a: str, b: str) -> List[Tuple[str, str]]:
        return [(u, v) for (u, v) in ((a, b), (b, a)) if (u, v) in self.network.links]

    def _inject(self, fault: Fault) -> None:
        active = _ActiveFault(fault, self.sim.now)
        net = self.network
        if fault.kind == LINK_FLAP:
            active.restore_pairs = [
                p for p in self._pairs(*fault.target) if net.links[p].up
            ]
            for u, v in active.restore_pairs:
                net.fail_link(u, v, bidirectional=False)
        elif fault.kind == NODE_CRASH:
            active.restore_pairs = net.crash_node(fault.target[0])
        elif fault.kind == PARTITION:
            active.restore_pairs = net.partition(set(fault.target))
        elif fault.kind == BANDWIDTH:
            for u, v in self._pairs(*fault.target):
                active.saved[(u, v)] = net.links[(u, v)].bandwidth_bps
                net.set_link_bandwidth(
                    u, v, net.links[(u, v)].bandwidth_bps * float(fault.param),
                    bidirectional=False,
                )
        elif fault.kind == BER_STORM:
            for u, v in self._pairs(*fault.target):
                active.saved[(u, v)] = net.links[(u, v)].ber
                net.set_link_ber(u, v, float(fault.param), bidirectional=False)
        elif fault.kind == QUEUE_SQUEEZE:
            for u, v in self._pairs(*fault.target):
                active.saved[(u, v)] = net.links[(u, v)].queue_limit
                net.set_link_queue_limit(u, v, int(fault.param), bidirectional=False)
        self.injected += 1
        self.trace.append((self.sim.now, "inject", fault.kind, fault.target, fault.param))
        _TELEMETRY.instant(
            "fault:inject", "faults",
            kind=fault.kind, target="|".join(fault.target), param=fault.param,
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "faults_injected_total", labels={"kind": fault.kind},
                help="fault events executed by the injector").inc()
        if math.isfinite(fault.duration):
            self.sim.schedule(fault.duration, self._clear, active)

    def _clear(self, active: _ActiveFault) -> None:
        fault = active.fault
        net = self.network
        if fault.kind in (LINK_FLAP, NODE_CRASH, PARTITION):
            for u, v in active.restore_pairs:
                net.restore_link(u, v, bidirectional=False)
        elif fault.kind == BANDWIDTH:
            for (u, v), bps in active.saved.items():
                net.set_link_bandwidth(u, v, bps, bidirectional=False)
        elif fault.kind == BER_STORM:
            for (u, v), ber in active.saved.items():
                net.set_link_ber(u, v, ber, bidirectional=False)
        elif fault.kind == QUEUE_SQUEEZE:
            for (u, v), limit in active.saved.items():
                net.set_link_queue_limit(u, v, int(limit), bidirectional=False)
        self.cleared += 1
        self.trace.append((self.sim.now, "clear", fault.kind, fault.target, fault.param))
        _TELEMETRY.instant(
            "fault:clear", "faults",
            kind=fault.kind, target="|".join(fault.target), param=fault.param,
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "faults_cleared_total", labels={"kind": fault.kind},
                help="fault events restored by the injector").inc()
            _TELEMETRY.complete(
                "fault", "faults", active.sim_start, self.sim.now,
                kind=fault.kind, target="|".join(fault.target), param=fault.param,
            )
