"""Canonical network profiles and topology builders.

The paper motivates ADAPTIVE with the diversity of deployed networks
(§2.1(B)): channel speeds from 4 Mbps Token Ring to 622 Mbps ATM, BERs of
roughly 1e-4 (copper) vs 1e-9 (fiber), MTUs from 48-byte cells to 9188-byte
SMDS frames, LAN vs congestion-prone WAN vs long-delay satellite paths.
This module captures those environments as reusable profiles plus the small
standard topologies every experiment uses.

Substitutions (recorded in DESIGN.md):

* ATM is modelled at the AAL5 service level (9180-byte SDUs) rather than at
  48-byte cell granularity; the transport system sees the same MTU/latency
  interface either way.
* Copper BER is scaled to 1e-6 so that a 1500-byte frame survives with
  ~98.8% probability — the paper's literal 1e-4 would destroy ~70% of full
  frames and no transport, lightweight or not, would function.  The
  qualitative copper ≫ fiber error ordering is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class NetworkProfile:
    """Static characteristics of one network technology."""

    name: str
    bandwidth_bps: float
    delay: float            #: one-way propagation delay per link, seconds
    ber: float              #: channel bit-error rate
    mtu: int                #: bytes
    queue_limit: int = 64   #: switch output-queue capacity, frames

    def scaled(self, **overrides) -> "NetworkProfile":
        """A copy with selected fields overridden (experiment sweeps)."""
        return replace(self, **overrides)


def ethernet_10() -> NetworkProfile:
    """10 Mbps Ethernet: low-latency, copper-grade errors (paper env. 1)."""
    return NetworkProfile("ethernet-10", 10e6, 100e-6, 1e-6, 1500, 50)


def token_ring_16() -> NetworkProfile:
    """16 Mbps Token Ring with its larger 4464-byte MTU."""
    return NetworkProfile("token-ring-16", 16e6, 150e-6, 1e-6, 4464, 50)


def fddi_100() -> NetworkProfile:
    """100 Mbps FDDI: fiber BER, 4500-byte frames."""
    return NetworkProfile("fddi-100", 100e6, 100e-6, 1e-9, 4500, 64)


def atm_155() -> NetworkProfile:
    """155 Mbps ATM (B-ISDN access), modelled at the AAL5 SDU level."""
    return NetworkProfile("atm-155", 155e6, 1e-3, 1e-9, 9180, 128)


def atm_622() -> NetworkProfile:
    """622 Mbps ATM WAN trunk — high bandwidth *and* high latency (env. 3)."""
    return NetworkProfile("atm-622", 622e6, 5e-3, 1e-9, 9180, 128)


def wan_internet() -> NetworkProfile:
    """Congestion-prone, high-latency internet path (paper env. 2)."""
    return NetworkProfile("wan-internet", 1.5e6, 35e-3, 1e-7, 1500, 30)


def satellite() -> NetworkProfile:
    """GEO satellite hop: ~270 ms one-way, elevated error rate."""
    return NetworkProfile("satellite", 1.5e6, 270e-3, 1e-6, 1500, 40)


PROFILES: Dict[str, NetworkProfile] = {
    p.name: p
    for p in (
        ethernet_10(),
        token_ring_16(),
        fddi_100(),
        atm_155(),
        atm_622(),
        wan_internet(),
        satellite(),
    )
}


# ----------------------------------------------------------------------
# standard topologies
# ----------------------------------------------------------------------
def linear_path(
    sim: Simulator,
    profile: NetworkProfile,
    hosts: Sequence[str] = ("A", "B"),
    n_switches: int = 2,
    rng: Optional[RngStreams] = None,
) -> Network:
    """``hostA - s1 - ... - sN - hostB`` with uniform links.

    The workhorse topology: two end systems separated by ``n_switches``
    intermediate switching nodes whose finite queues provide the congestion
    behaviour adaptive policies react to.
    """
    if len(hosts) != 2:
        raise ValueError("linear_path takes exactly two hosts")
    net = Network(sim, rng)
    switches = [f"s{i + 1}" for i in range(n_switches)]
    for name in (hosts[0], *switches, hosts[1]):
        net.add_node(name)
    chain = [hosts[0], *switches, hosts[1]]
    for u, v in zip(chain, chain[1:]):
        net.add_link(
            u,
            v,
            bandwidth_bps=profile.bandwidth_bps,
            delay=profile.delay,
            ber=profile.ber,
            queue_limit=profile.queue_limit,
            mtu=profile.mtu,
        )
    return net


def star(
    sim: Simulator,
    profile: NetworkProfile,
    hosts: Sequence[str],
    hub: str = "hub",
    rng: Optional[RngStreams] = None,
) -> Network:
    """Hosts around a single switch — the multicast/conference topology."""
    net = Network(sim, rng)
    net.add_node(hub)
    for h in hosts:
        net.add_node(h)
        net.add_link(
            h,
            hub,
            bandwidth_bps=profile.bandwidth_bps,
            delay=profile.delay,
            ber=profile.ber,
            queue_limit=profile.queue_limit,
            mtu=profile.mtu,
        )
    return net


def dual_path(
    sim: Simulator,
    primary: NetworkProfile,
    backup: NetworkProfile,
    hosts: Tuple[str, str] = ("A", "B"),
    rng: Optional[RngStreams] = None,
) -> Network:
    """Two hosts with a primary route and a differently-characterised backup.

    Built for the paper's route-failover scenario (§4.1.2): fail the primary
    (terrestrial) path and traffic shifts onto the backup (satellite) path,
    changing the RTT regime that reliability policies key off.
    """
    a, b = hosts
    net = Network(sim, rng)
    for name in (a, b, "p1", "p2", "q1", "q2"):
        net.add_node(name)
    for u, v, prof in [
        (a, "p1", primary),
        ("p1", "p2", primary),
        ("p2", b, primary),
        (a, "q1", backup),
        ("q1", "q2", backup),
        ("q2", b, backup),
    ]:
        net.add_link(
            u,
            v,
            bandwidth_bps=prof.bandwidth_bps,
            delay=prof.delay,
            ber=prof.ber,
            queue_limit=prof.queue_limit,
            mtu=prof.mtu,
        )
    return net
