"""Topology, routing, multicast groups, and the network-state view.

The ``Network`` ties nodes and links into a ``networkx`` digraph, computes
(and caches) shortest routes weighted by link latency, recomputes them when
links fail or recover, and maintains multicast group membership.  It also
exposes the aggregate state that the MANTTS Network Monitor Interface
samples: per-path RTT estimates, bottleneck bandwidth, path MTU, and queue
occupancy at intermediate nodes (the paper's negotiation "with intermediate
switching nodes", §4.1.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.netsim.frame import Frame
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

#: nominal probe size used to weight routes (favours fast, short links)
_ROUTE_PROBE_BYTES = 512


class Network:
    """A simulated internetwork of switching nodes and hosts."""

    def __init__(self, sim: Simulator, rng: Optional[RngStreams] = None) -> None:
        self.sim = sim
        self.rng = rng or RngStreams(0)
        self.graph = nx.DiGraph()
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.groups: Dict[str, set[str]] = {}
        self._route_cache: Dict[Tuple[str, str], Optional[List[str]]] = {}
        #: bumped on every topology/link-parameter change; lets path-probe
        #: caches (repro.host.connmgr) invalidate without watching links
        self.topology_version = 0

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, switch_latency: float = 5e-6) -> Node:
        """Create a switching node (idempotent on name collision is an error)."""
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = Node(self, name, switch_latency)
        self.nodes[name] = node
        self.graph.add_node(name)
        return node

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay: float,
        ber: float = 0.0,
        queue_limit: int = 64,
        mtu: int = 1500,
        bidirectional: bool = True,
    ) -> None:
        """Connect two existing nodes; by default with a link each way."""
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for u, v in pairs:
            if u not in self.nodes or v not in self.nodes:
                raise KeyError(f"both endpoints must exist before linking {u}->{v}")
            if (u, v) in self.links:
                raise ValueError(f"duplicate link {u}->{v}")
            link = Link(
                self.sim,
                self.rng,
                name=f"{u}->{v}",
                bandwidth_bps=bandwidth_bps,
                delay=delay,
                ber=ber,
                queue_limit=queue_limit,
                mtu=mtu,
                deliver=self.nodes[v].receive,
            )
            self.links[(u, v)] = link
            weight = delay + _ROUTE_PROBE_BYTES * 8.0 / bandwidth_bps
            self.graph.add_edge(u, v, weight=weight)
        self._route_cache.clear()
        self.topology_version += 1

    def attach_host(self, name: str, deliver: Callable[[Frame], None]) -> Node:
        """Attach a host NIC callback to node ``name`` (creating it if new)."""
        node = self.nodes.get(name) or self.add_node(name)
        node.attach_host(deliver)
        return node

    def detach_host(self, name: str) -> None:
        """Remove the host attachment from node ``name`` (idempotent).

        The switching node itself stays in the topology and keeps
        forwarding transit traffic; only local delivery stops.
        """
        node = self.nodes.get(name)
        if node is not None:
            node.detach_host()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> Optional[List[str]]:
        """Full node path ``src..dst`` or None when unreachable (cached)."""
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        try:
            path = nx.shortest_path(self.graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            path = None
        self._route_cache[key] = path
        return path

    def next_hop(self, at: str, dst: str) -> Optional[str]:
        """The neighbour to which ``at`` forwards traffic bound for ``dst``."""
        path = self.route(at, dst)
        if path is None or len(path) < 2:
            return None
        return path[1]

    def link(self, u: str, v: str) -> Link:
        return self.links[(u, v)]

    def fail_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Take link(s) down and force route recomputation.

        Models the paper's "intermediate node failure ... routes change from
        a terrestrial link to a satellite link" scenario (§4.1.2).
        """
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for u, v in pairs:
            self.links[(u, v)].fail()
            if self.graph.has_edge(u, v):
                self.graph.remove_edge(u, v)
            _TELEMETRY.instant("link-fail", "netsim", link=f"{u}->{v}")
        self._route_cache.clear()
        self.topology_version += 1

    def restore_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Bring link(s) back and restore their routing weight."""
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for u, v in pairs:
            link = self.links[(u, v)]
            link.restore()
            weight = link.delay + _ROUTE_PROBE_BYTES * 8.0 / link.bandwidth_bps
            self.graph.add_edge(u, v, weight=weight)
            _TELEMETRY.instant("link-restore", "netsim", link=f"{u}->{v}")
        self._route_cache.clear()
        self.topology_version += 1

    # ------------------------------------------------------------------
    # run-time characteristic changes (fault-injection hooks)
    # ------------------------------------------------------------------
    def _pairs(self, a: str, b: str, bidirectional: bool) -> List[Tuple[str, str]]:
        return [(a, b), (b, a)] if bidirectional else [(a, b)]

    def set_link_bandwidth(
        self, a: str, b: str, bandwidth_bps: float, bidirectional: bool = True
    ) -> None:
        """Change channel rate(s) and re-weight routing accordingly."""
        for u, v in self._pairs(a, b, bidirectional):
            link = self.links[(u, v)]
            link.set_bandwidth(bandwidth_bps)
            if self.graph.has_edge(u, v):
                weight = link.delay + _ROUTE_PROBE_BYTES * 8.0 / link.bandwidth_bps
                self.graph[u][v]["weight"] = weight
        self._route_cache.clear()
        self.topology_version += 1

    def set_link_ber(self, a: str, b: str, ber: float, bidirectional: bool = True) -> None:
        """Change bit-error rate(s); routing weights are latency-based, so
        no route recomputation is needed (the monitor sees it via path_ber)."""
        for u, v in self._pairs(a, b, bidirectional):
            self.links[(u, v)].set_ber(ber)

    def set_link_queue_limit(
        self, a: str, b: str, queue_limit: int, bidirectional: bool = True
    ) -> None:
        """Change queue capacity(-ies); excess occupants are dropped."""
        for u, v in self._pairs(a, b, bidirectional):
            self.links[(u, v)].set_queue_limit(queue_limit)

    def incident_links(self, name: str) -> List[Tuple[str, str]]:
        """Directed link endpoint pairs touching ``name`` (either direction)."""
        return sorted((u, v) for (u, v) in self.links if u == name or v == name)

    def crash_node(self, name: str) -> List[Tuple[str, str]]:
        """Take every *currently up* link touching ``name`` down.

        Returns the directed pairs that were failed, so the caller can
        restore exactly those on recovery (links that were already down for
        another reason are left for their own owner to restore).
        """
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        failed = [(u, v) for (u, v) in self.incident_links(name) if self.links[(u, v)].up]
        for u, v in failed:
            self.fail_link(u, v, bidirectional=False)
        return failed

    def partition(self, group: set[str] | frozenset[str]) -> List[Tuple[str, str]]:
        """Fail every up link crossing between ``group`` and its complement.

        Returns the directed pairs failed (for exact restoration).
        """
        cut = [
            (u, v)
            for (u, v) in sorted(self.links)
            if ((u in group) != (v in group)) and self.links[(u, v)].up
        ]
        for u, v in cut:
            self.fail_link(u, v, bidirectional=False)
        return cut

    #: destination address meaning "every attached host except the sender"
    #: (the paper's broadcast service, e.g. distributed name resolution)
    BROADCAST = "*"

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Inject a frame at its source node."""
        node = self.nodes.get(frame.src)
        if node is None:
            raise KeyError(f"unknown source host {frame.src!r}")
        if frame.multicast_dsts is None:
            if frame.dst == self.BROADCAST:
                frame.multicast_dsts = sorted(
                    name
                    for name, n in self.nodes.items()
                    if n.host_deliver is not None and name != frame.src
                )
            elif frame.dst in self.groups:
                frame.multicast_dsts = sorted(self.groups[frame.dst])
        node.inject(frame)

    # ------------------------------------------------------------------
    # multicast groups
    # ------------------------------------------------------------------
    def join_group(self, group: str, host: str) -> None:
        """Add ``host`` to multicast group ``group``."""
        if host not in self.nodes:
            raise KeyError(f"unknown host {host!r}")
        self.groups.setdefault(group, set()).add(host)

    def leave_group(self, group: str, host: str) -> None:
        """Remove ``host`` from ``group`` (no-op if absent)."""
        members = self.groups.get(group)
        if members is not None:
            members.discard(host)
            if not members:
                del self.groups[group]

    def group_members(self, group: str) -> set[str]:
        return set(self.groups.get(group, set()))

    # ------------------------------------------------------------------
    # network-state view (MANTTS-NMI ground truth)
    # ------------------------------------------------------------------
    def path_links(self, src: str, dst: str) -> List[Link]:
        """Links along the current route, empty when unreachable."""
        path = self.route(src, dst)
        if path is None:
            return []
        return [self.links[(u, v)] for u, v in zip(path, path[1:])]

    def path_mtu(self, src: str, dst: str) -> Optional[int]:
        """Minimum MTU along the route (what the transport must fragment to)."""
        links = self.path_links(src, dst)
        return min((l.mtu for l in links), default=None)

    def path_propagation_delay(self, src: str, dst: str) -> Optional[float]:
        """Sum of one-way propagation delays (excludes queueing)."""
        links = self.path_links(src, dst)
        if not links:
            return None
        return sum(l.delay for l in links)

    def path_bottleneck_bps(self, src: str, dst: str) -> Optional[float]:
        """Minimum channel rate along the route."""
        links = self.path_links(src, dst)
        return min((l.bandwidth_bps for l in links), default=None)

    def path_queue_occupancy(self, src: str, dst: str) -> float:
        """Worst queue fill fraction along the route — the congestion signal.

        The maximum (not the mean) is reported: one full bottleneck queue
        is what loses packets, however many empty hops surround it.
        """
        links = self.path_links(src, dst)
        if not links:
            return 0.0
        return max(l.queue_len / l.queue_limit for l in links)

    def path_ber(self, src: str, dst: str) -> float:
        """Compound bit-error rate along the route."""
        links = self.path_links(src, dst)
        ok = 1.0
        for l in links:
            ok *= 1.0 - l.ber
        return 1.0 - ok

    def nominal_rtt(self, src: str, dst: str, size: int = _ROUTE_PROBE_BYTES) -> Optional[float]:
        """Unloaded round-trip estimate for a ``size``-byte probe."""
        fwd = self.path_links(src, dst)
        rev = self.path_links(dst, src)
        if not fwd or not rev:
            return None
        t = 0.0
        for l in fwd + rev:
            t += l.delay + l.serialization_time(size)
        return t
