"""Network substrate: links, switching nodes, topologies, traffic.

This package replaces the physical networks of the paper's testbed
(Ethernet, Token Ring, FDDI, DQDB, ATM — §2.1(B)) with a discrete-event
model that preserves the characteristics the ADAPTIVE architecture reacts
to: channel speed, propagation delay, bit-error rate, maximum transmission
unit, finite switch queues (and therefore congestion loss), route changes,
and genuine multicast replication inside the network.
"""

from repro.netsim.faults import Fault, FaultInjector, FaultSchedule
from repro.netsim.frame import Frame
from repro.netsim.link import Link, LinkStats
from repro.netsim.node import Node
from repro.netsim.network import Network
from repro.netsim.profiles import (
    NetworkProfile,
    PROFILES,
    atm_155,
    atm_622,
    ethernet_10,
    fddi_100,
    satellite,
    token_ring_16,
    wan_internet,
)
from repro.netsim.traffic import BackgroundLoad, OnOffLoad, PoissonLoad

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "Frame",
    "Link",
    "LinkStats",
    "Node",
    "Network",
    "NetworkProfile",
    "PROFILES",
    "ethernet_10",
    "token_ring_16",
    "fddi_100",
    "atm_155",
    "atm_622",
    "wan_internet",
    "satellite",
    "BackgroundLoad",
    "OnOffLoad",
    "PoissonLoad",
]
