"""Background / cross traffic generators.

Experiments need controllable congestion: cross traffic that fills switch
queues on the path under test, raising queueing delay and eventually causing
drop-tail loss.  Three classical source models are provided:

* ``PoissonLoad`` — memoryless packet arrivals (aggregate "many users");
* ``OnOffLoad`` — bursty two-state source (the paper's variable-bit-rate
  video and bursty TELNET/OLTP rows in Table 1);
* ``BackgroundLoad`` (CBR) — constant-rate filler used to pin utilization
  to an exact level.

All loads send plain frames between two nodes of an existing network; the
frames need no attached host at the sink (the node counts and discards
them), so loads can be aimed across any path segment.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.frame import Frame
from repro.netsim.network import Network
from repro.sim.process import Process


class _LoadBase:
    """Common start/stop machinery for traffic sources."""

    def __init__(self, network: Network, src: str, dst: str, size: int, name: str) -> None:
        if src not in network.nodes or dst not in network.nodes:
            raise KeyError("traffic endpoints must be existing nodes")
        self.network = network
        self.src = src
        self.dst = dst
        self.size = int(size)
        self.name = name
        self.sent = 0
        self._proc: Optional[Process] = None

    def start(self, delay: float = 0.0) -> None:
        """Begin generating; may be called once per load instance."""
        if self._proc is not None:
            raise RuntimeError(f"load {self.name} already started")
        self._proc = Process(
            self.network.sim, self._body, name=self.name, start_delay=delay
        )

    def stop(self) -> None:
        """Cease generating immediately."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _emit(self) -> None:
        frame = Frame(
            self.src,
            self.dst,
            self.size,
            payload=("bg", self.name, self.sent),
            created_at=self.network.sim.now,
        )
        self.network.send(frame)
        self.sent += 1

    def _body(self):  # pragma: no cover - overridden
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator


class BackgroundLoad(_LoadBase):
    """Constant-bit-rate filler: ``rate_bps`` split into ``size``-byte frames."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_bps: float,
        size: int = 1000,
        name: str = "cbr",
    ) -> None:
        super().__init__(network, src, dst, size, name)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.interval = size * 8.0 / rate_bps

    def _body(self):
        while True:
            self._emit()
            yield self.interval


class PoissonLoad(_LoadBase):
    """Poisson arrivals at ``rate_pps`` packets/second."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rate_pps: float,
        size: int = 1000,
        name: str = "poisson",
    ) -> None:
        super().__init__(network, src, dst, size, name)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self._rng = network.rng.stream(f"load:{name}")

    def _body(self):
        while True:
            yield float(self._rng.exponential(1.0 / self.rate_pps))
            self._emit()


class OnOffLoad(_LoadBase):
    """Two-state bursty source: exponential ON/OFF periods, CBR while ON."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        peak_bps: float,
        mean_on: float = 0.4,
        mean_off: float = 0.6,
        size: int = 1000,
        name: str = "onoff",
    ) -> None:
        super().__init__(network, src, dst, size, name)
        if peak_bps <= 0 or mean_on <= 0 or mean_off <= 0:
            raise ValueError("peak rate and state durations must be positive")
        self.interval = size * 8.0 / peak_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = network.rng.stream(f"load:{name}")

    @property
    def mean_rate_bps(self) -> float:
        """Long-run average offered rate."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty * self.size * 8.0 / self.interval

    def _body(self):
        while True:
            on_end = float(self._rng.exponential(self.mean_on))
            t = 0.0
            while t < on_end:
                self._emit()
                yield self.interval
                t += self.interval
            yield float(self._rng.exponential(self.mean_off))
