"""Switching node (intermediate system) and host attachment point.

Every vertex of the :class:`repro.netsim.network.Network` graph is a
``Node``.  A node forwards arriving frames toward their destination with a
small fixed switching latency; a node may also have a *host* attached, in
which case frames addressed to it are handed up to the host's network
interface (the transport system's entry point).

Congestion lives in the outgoing :class:`~repro.netsim.link.Link` queues,
not in the node itself; the node merely consults routing and replicates
multicast frames at branch points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.frame import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.network import Network


@dataclass
class NodeStats:
    """Per-node forwarding counters (visible to MANTTS' network monitor)."""

    forwarded: int = 0
    delivered_local: int = 0
    dropped_no_route: int = 0
    replicated: int = 0


class Node:
    """One switching node; optionally a host attachment point."""

    def __init__(self, network: "Network", name: str, switch_latency: float = 5e-6) -> None:
        self.network = network
        self.name = name
        self.switch_latency = switch_latency
        self.host_deliver: Optional[Callable[[Frame], None]] = None
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    def attach_host(self, deliver: Callable[[Frame], None]) -> None:
        """Register the host NIC callback for locally addressed frames."""
        if self.host_deliver is not None:
            raise ValueError(f"node {self.name} already has a host attached")
        self.host_deliver = deliver

    def detach_host(self) -> None:
        """Remove the host attachment (node teardown); idempotent.

        Frames still in flight toward this node are counted as discarded
        on arrival rather than delivered.
        """
        self.host_deliver = None

    # ------------------------------------------------------------------
    def receive(self, frame: Frame) -> None:
        """Entry point for frames arriving from an adjacent link."""
        frame.hops += 1
        frame.trace.append(self.name)
        self.network.sim.schedule_transient(self.switch_latency, self._forward, frame)

    def inject(self, frame: Frame) -> None:
        """Entry point for frames originated by the attached host."""
        frame.trace.append(self.name)
        self._forward(frame)

    # ------------------------------------------------------------------
    def _forward(self, frame: Frame) -> None:
        if frame.multicast_dsts is not None:
            self._forward_multicast(frame)
        else:
            self._forward_unicast(frame)

    def _forward_unicast(self, frame: Frame) -> None:
        if frame.dst == self.name:
            self._deliver_local(frame)
            return
        nxt = self.network.next_hop(self.name, frame.dst)
        if nxt is None:
            self.stats.dropped_no_route += 1
            # the frame dies here; surrender its payload's wire reference
            rel = getattr(frame.payload, "release", None)
            if rel is not None:
                rel()
            return
        link = self.network.link(self.name, nxt)
        self.stats.forwarded += 1
        link.send(frame)

    def _forward_multicast(self, frame: Frame) -> None:
        """Replicate the frame per next hop of the remaining member set.

        This is network-layer multicast: one copy per tree edge, not one
        copy per receiver (the difference underlying experiment E2's
        comparison with per-receiver unicast).
        """
        dsts = frame.multicast_dsts or []
        local = [d for d in dsts if d == self.name]
        remote = [d for d in dsts if d != self.name]
        if local:
            self._deliver_local(frame)
        by_hop: dict[str, list[str]] = {}
        for d in remote:
            nxt = self.network.next_hop(self.name, d)
            if nxt is None:
                self.stats.dropped_no_route += 1
                continue
            by_hop.setdefault(nxt, []).append(d)
        for nxt, subset in by_hop.items():
            out = frame.clone_for(subset)
            link = self.network.link(self.name, nxt)
            self.stats.forwarded += 1
            if len(by_hop) > 1:
                self.stats.replicated += 1
            link.send(out)

    def _deliver_local(self, frame: Frame) -> None:
        self.stats.delivered_local += 1
        if self.host_deliver is not None:
            self.host_deliver(frame)
        else:
            # no host (never attached, or torn down): surrender the payload
            rel = getattr(frame.payload, "release", None)
            if rel is not None:
                rel()
