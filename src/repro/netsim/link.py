"""Point-to-point simplex link with serialization, queueing, and bit errors.

Each link is a single-server queue: frames wait in per-priority FIFO queues,
are serialized at the channel rate, then propagate for a fixed delay.  The
queue has finite capacity — overflow is *the* congestion-loss mechanism the
paper's adaptive policies respond to ("greater packet loss due to queue
overflows at intermediate switching nodes", §3(C)).

Bit errors are applied per frame with probability ``1 - (1 - BER)**bits``
using the link's own random stream, so changing one link's traffic never
perturbs another's error pattern.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional


from repro.netsim.frame import Frame
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

#: number of distinct priority classes a link serves (see frame.PRIO_*)
N_PRIORITIES = 3


@dataclass
class LinkStats:
    """Counters exposed to MANTTS' network monitor and to UNITES."""

    enqueued: int = 0
    delivered: int = 0
    dropped_overflow: int = 0
    dropped_down: int = 0
    dropped_mtu: int = 0
    corrupted: int = 0
    bytes_delivered: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the channel spent transmitting."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class Link:
    """A directed link ``a -> b`` with finite queue and error model.

    Parameters
    ----------
    bandwidth_bps:
        Channel rate in bits per second.
    delay:
        One-way propagation delay in seconds.
    ber:
        Channel bit-error rate (1e-4 copper, 1e-9 fiber per paper §2.1(B)).
    queue_limit:
        Maximum frames queued awaiting transmission (drop-tail beyond).
    mtu:
        Maximum frame size the link accepts, in bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngStreams,
        name: str,
        bandwidth_bps: float,
        delay: float,
        ber: float = 0.0,
        queue_limit: int = 64,
        mtu: int = 1500,
        deliver: Optional[Callable[[Frame], None]] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if not (0.0 <= ber < 1.0):
            raise ValueError("BER must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.ber = float(ber)
        self.queue_limit = int(queue_limit)
        self.mtu = int(mtu)
        self.deliver = deliver
        self.up = True
        self.stats = LinkStats()
        self._queues: list[deque[Frame]] = [deque() for _ in range(N_PRIORITIES)]
        self._transmitting = False
        self._rng = rng.stream(f"link:{name}")
        # Batched delivery (fast kernel only): serialization completions
        # and propagation arrivals are two monotone event streams, so each
        # gets an EventChain — back-to-back frames then cost one deque
        # append instead of one heap event, and the kernel's batch-drain
        # hook can fire a whole burst off a single heap pop.  The legacy
        # kernel keeps the per-frame transient events verbatim.
        if getattr(sim, "_legacy", False):
            self._tx_chain = None
            self._rx_chain = None
        else:
            self._tx_chain = sim.make_chain()
            self._rx_chain = sim.make_chain()

    # ------------------------------------------------------------------
    @property
    def queue_len(self) -> int:
        """Frames currently waiting (not counting the one on the wire)."""
        return sum(len(q) for q in self._queues)

    def serialization_time(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the channel."""
        return size_bytes * 8.0 / self.bandwidth_bps

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Enqueue a frame for transmission.

        Returns False (and records the drop) when the link is down, the
        frame exceeds the MTU, or the queue is full.  Callers never get an
        exception for loss — loss is a normal network behaviour that the
        transport configuration may or may not compensate for.
        """
        if not self.up:
            self.stats.dropped_down += 1
            self._count_drop("down", frame.size)
            self._drop_payload(frame)
            return False
        if frame.size > self.mtu:
            # A frame sized for a fatter path arriving after a route change:
            # the 1992-era network has no fragmentation, so this is a
            # path-MTU black hole — the frame is dropped and counted, and
            # the transport sees it as loss (reliable sessions will
            # retransmit until their give-up threshold surfaces the fault).
            self.stats.dropped_mtu += 1
            self._count_drop("mtu", frame.size)
            self._drop_payload(frame)
            return False
        if self.queue_len >= self.queue_limit:
            self.stats.dropped_overflow += 1
            self._count_drop("overflow", frame.size)
            self._drop_payload(frame)
            return False
        prio = min(max(frame.priority, 0), N_PRIORITIES - 1)
        self._queues[prio].append(frame)
        self.stats.enqueued += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "link_frames_enqueued_total", labels={"link": self.name},
                help="frames accepted into the link queue").inc()
            _TELEMETRY.metrics.counter(
                "link_bytes_enqueued_total", labels={"link": self.name},
                help="bytes accepted into the link queue").inc(frame.size)
        if not self._transmitting:
            self._start_next()
        return True

    @staticmethod
    def _drop_payload(frame: Frame) -> None:
        """A dropped frame surrenders its payload's wire reference.

        Duck-typed so netsim stays transport-agnostic: pooled transport
        PDUs expose ``release()`` and go back to their free list promptly;
        anything else (background-traffic tuples, plain PDUs) is inert.
        """
        rel = getattr(frame.payload, "release", None)
        if rel is not None:
            rel()

    def _count_drop(self, reason: str, nbytes: int = 0) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "link_frames_dropped_total",
                labels={"link": self.name, "reason": reason},
                help="frames lost at the link, by cause").inc()
            if nbytes:
                _TELEMETRY.metrics.counter(
                    "link_bytes_dropped_total",
                    labels={"link": self.name, "reason": reason},
                    help="bytes lost at the link, by cause").inc(nbytes)
            _TELEMETRY.instant("link-drop", "netsim", link=self.name, reason=reason)

    def _start_next(self) -> None:
        frame = None
        for q in self._queues:
            if q:
                frame = q.popleft()
                break
        if frame is None:
            self._transmitting = False
            return
        self._transmitting = True
        ser = self.serialization_time(frame.size)
        self.stats.busy_time += ser
        chain = self._tx_chain
        if chain is not None:
            chain.schedule(ser, self._tx_done, frame)
        else:
            self.sim.schedule_transient(ser, self._tx_done, frame)

    def _tx_done(self, frame: Frame) -> None:
        # Channel errors are imposed while the frame is on the wire.
        if self.ber > 0.0 and not frame.corrupted:
            p_err = 1.0 - (1.0 - self.ber) ** (frame.size * 8)
            if self._rng.random() < p_err:
                frame.corrupted = True
                self.stats.corrupted += 1
                if _TELEMETRY.enabled:
                    _TELEMETRY.metrics.counter(
                        "link_frames_corrupted_total", labels={"link": self.name},
                        help="frames hit by channel bit errors").inc()
        if self.up:
            self._propagate(frame)
        else:
            self.stats.dropped_down += 1
            self._count_drop("down", frame.size)
            self._drop_payload(frame)
        self._start_next()

    def _propagate(self, frame: Frame) -> None:
        """Launch a serialized frame onto the propagation delay.

        Runs after the error model, so the frame's fate on the channel is
        already decided.  Shard boundary links override this one hook
        (:class:`repro.shard.gateway.GatewayLink`) to hand the frame to
        the cross-process gateway instead of the local event chain —
        queueing, serialization, BER draws, and drop accounting on the
        near side stay byte-identical to a serial run.
        """
        chain = self._rx_chain
        if chain is not None:
            chain.schedule(self.delay, self._arrive, frame)
        else:
            self.sim.schedule_transient(self.delay, self._arrive, frame)

    def _arrive(self, frame: Frame) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += frame.size
        if _TELEMETRY.enabled:
            t = _TELEMETRY
            t.metrics.counter(
                "link_frames_delivered_total", labels={"link": self.name},
                help="frames handed to the far endpoint").inc()
            t.metrics.counter(
                "link_bytes_delivered_total", labels={"link": self.name},
                help="bytes handed to the far endpoint").inc(frame.size)
            # The frame left the queue serialization_time before the
            # propagation delay began: reconstruct its time on the wire.
            start = self.sim.now - self.delay - self.serialization_time(frame.size)
            t.complete("link-tx", "netsim", start, self.sim.now,
                       link=self.name, bytes=frame.size,
                       corrupted=frame.corrupted)
        if self.deliver is not None:
            self.deliver(frame)

    # ------------------------------------------------------------------
    # run-time characteristic changes (the fault injector's hooks)
    # ------------------------------------------------------------------
    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the channel rate (bandwidth collapse / recovery).

        Only affects frames serialized from now on; the frame currently on
        the wire keeps the rate it started with.
        """
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = float(bandwidth_bps)

    def set_ber(self, ber: float) -> None:
        """Change the channel bit-error rate (BER storm / recovery)."""
        if not (0.0 <= ber < 1.0):
            raise ValueError("BER must be in [0, 1)")
        self.ber = float(ber)

    def set_queue_limit(self, queue_limit: int) -> None:
        """Shrink or grow the output queue.

        Shrinking below the current occupancy drops the excess from the
        *back* of the lowest-priority queues first (drop-tail semantics),
        counting them as overflow losses and surrendering their pooled
        payload references like every other drop site.
        """
        if queue_limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.queue_limit = int(queue_limit)
        for q in reversed(self._queues):
            while self.queue_len > self.queue_limit and q:
                frame = q.pop()
                self.stats.dropped_overflow += 1
                self._count_drop("overflow", frame.size)
                self._drop_payload(frame)

    def fail(self) -> None:
        """Take the link down; queued and in-flight frames are lost.

        The drain is a first-class drop site: every queued frame is counted
        as ``dropped_down`` *and* surrenders its payload's wire reference,
        so pooled transport PDU shells go back to ``PDU_POOL`` instead of
        leaking with the cleared deque.
        """
        self.up = False
        for q in self._queues:
            lost = len(q)
            self.stats.dropped_down += lost
            if lost and _TELEMETRY.enabled:
                _TELEMETRY.metrics.counter(
                    "link_frames_dropped_total",
                    labels={"link": self.name, "reason": "down"},
                    help="frames lost at the link, by cause").inc(lost)
                _TELEMETRY.metrics.counter(
                    "link_bytes_dropped_total",
                    labels={"link": self.name, "reason": "down"},
                    help="bytes lost at the link, by cause",
                ).inc(sum(frame.size for frame in q))
            for frame in q:
                self._drop_payload(frame)
            q.clear()

    def restore(self) -> None:
        """Bring the link back up."""
        self.up = True
