"""The pluggable transport substrate contract (CORTEX-style).

Every substrate the ADAPTIVE stack can run over — the discrete-event
``repro.netsim`` world, in-process loopback queues, real UDP sockets —
is presented through two small interfaces:

* :class:`Endpoint` — one byte-stream conversation with one peer:
  ``send`` / ``recv``-with-timeout / ``close`` / ``timestamp``, with the
  explicit recv result contract below;
* :class:`TransportBackend` — the substrate itself: owns the clock
  domain (:class:`~repro.sim.clock.Clock`), the simulator the stack
  schedules on, the *fabric* (the network-surface object hosts attach
  to), and an :meth:`~TransportBackend.pair` factory producing two
  connected endpoints for conformance tests and benchmarks.

recv contract (every backend, one shared conformance suite)
-----------------------------------------------------------
``recv(max_len, timeout)`` returns a :class:`RecvResult` whose ``code``
is exactly one of:

========================  ============================================
``code > 0``              that many payload bytes in ``data`` (short
                          reads are normal: whatever is buffered, up to
                          ``max_len``)
``code == 0``             orderly EOF — the peer closed after all its
                          data was consumed
``code == ETIMEDOUT``     nothing arrived within ``timeout`` seconds
``code == ECONNRESET``    the conversation was aborted (peer reset, or
                          recv on a locally closed endpoint); pending
                          data is discarded, like a TCP RST
========================  ============================================

Negative codes deliberately mirror errno magnitudes offset into a
private range so they can never collide with a byte count.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import deque
from typing import Optional, Tuple

from repro.sim.clock import Clock

#: recv timed out with no data (CORTEX's explicit-timeout result)
ETIMEDOUT = -1000
#: the conversation was reset (peer abort / local close)
ECONNRESET = -1001


class RecvResult:
    """One recv outcome: a code per the contract above plus the bytes."""

    __slots__ = ("code", "data")

    def __init__(self, code: int, data: bytes = b"") -> None:
        self.code = code
        self.data = data

    @property
    def ok(self) -> bool:
        return self.code > 0

    @property
    def eof(self) -> bool:
        return self.code == 0

    @property
    def timed_out(self) -> bool:
        return self.code == ETIMEDOUT

    @property
    def reset(self) -> bool:
        return self.code == ECONNRESET

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return f"<RecvResult {self.code}B>"
        name = {0: "EOF", ETIMEDOUT: "ETIMEDOUT", ECONNRESET: "ECONNRESET"}
        return f"<RecvResult {name.get(self.code, self.code)}>"


class Endpoint(ABC):
    """One conversation with one peer over some substrate."""

    #: backend name this endpoint belongs to (set by the backend)
    backend = ""

    @abstractmethod
    def send(self, data: bytes) -> int:
        """Queue ``data`` toward the peer.

        Returns the number of bytes accepted (all of them — substrates
        here never short-write) or :data:`ECONNRESET` when the endpoint
        is closed/reset.
        """

    @abstractmethod
    def recv(self, max_len: int = 65536,
             timeout: Optional[float] = None) -> RecvResult:
        """Receive up to ``max_len`` bytes per the module recv contract.

        ``timeout`` is in seconds of this endpoint's clock domain;
        ``None`` blocks until data, EOF, or reset (sim endpoints treat an
        idle event queue as a timeout — virtual time cannot pass without
        events).
        """

    @abstractmethod
    def close(self) -> None:
        """Orderly shutdown: the peer drains buffered data, then sees EOF."""

    @abstractmethod
    def abort(self) -> None:
        """Reset the conversation: the peer's pending data is discarded
        and its next recv returns :data:`ECONNRESET`."""

    @abstractmethod
    def timestamp(self) -> int:
        """Monotonic nanoseconds in this endpoint's clock domain."""

    def keepalive(self) -> None:
        """Send a liveness beacon carrying no payload.

        Keepalives refresh the peer's ``last_heard`` lease but are *not*
        data: a ``recv`` blocked on a peer that only sends keepalives
        still returns :data:`ETIMEDOUT` when its timeout elapses (the
        conformance suite asserts this).  Default: no-op, for substrates
        without a beacon concept (the sim world has injected crashes
        instead of silent ones).
        """

    def __enter__(self) -> "Endpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _BufferedEndpoint(Endpoint):
    """Shared rx-buffer machinery for the wall-clock backends.

    A deque of byte chunks guarded by one condition variable; a feeder
    thread (queue peer or asyncio receiver) appends and notifies.  Short
    reads split chunks; EOF/reset are flags checked in contract order
    (reset wins, buffered data beats EOF).
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._cond = threading.Condition()
        self._chunks: deque = deque()
        self._eof = False
        self._reset = False
        self._closed = False
        #: clock reading of the last peer sign-of-life (data or keepalive)
        self.last_heard = clock.now()

    # -- feeder side (peer endpoint / receiver thread) ------------------
    def _feed(self, data: bytes) -> None:
        with self._cond:
            if self._eof or self._reset:
                return  # late data after FIN/RST is dropped
            self.last_heard = self.clock.now()
            if data:
                self._chunks.append(data)
                self._cond.notify_all()

    def _feed_keepalive(self) -> None:
        """A peer beacon arrived: refresh the lease, wake nobody — a
        keepalive is a sign of life, not data, so blocked recvs keep
        waiting toward their :data:`ETIMEDOUT`."""
        with self._cond:
            self.last_heard = self.clock.now()

    def _feed_eof(self) -> None:
        with self._cond:
            self._eof = True
            self._cond.notify_all()

    def _feed_reset(self) -> None:
        with self._cond:
            self._reset = True
            self._chunks.clear()  # RST semantics: pending data is gone
            self._cond.notify_all()

    # -- contract -------------------------------------------------------
    def recv(self, max_len: int = 65536,
             timeout: Optional[float] = None) -> RecvResult:
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._cond:
            while True:
                if self._reset or self._closed:
                    return RecvResult(ECONNRESET)
                if self._chunks:
                    return RecvResult(*self._take(max_len))
                if self._eof:
                    return RecvResult(0)
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - self.clock.now()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self._chunks or self._eof or self._reset:
                            continue  # state changed on the wait's edge
                        return RecvResult(ETIMEDOUT)

    def _take(self, max_len: int) -> Tuple[int, bytes]:
        """Pop up to ``max_len`` buffered bytes (caller holds the lock)."""
        out = bytearray()
        while self._chunks and len(out) < max_len:
            chunk = self._chunks[0]
            room = max_len - len(out)
            if len(chunk) <= room:
                out += self._chunks.popleft()
            else:
                out += chunk[:room]
                self._chunks[0] = chunk[room:]
        return len(out), bytes(out)

    def timestamp(self) -> int:
        return self.clock.timestamp_ns()


class TransportBackend(ABC):
    """One substrate the ADAPTIVE stack can be constructed over.

    A backend owns four things:

    * ``clock`` — the substrate's time domain (sim or wall);
    * ``simulator`` — the kernel instance the stack above schedules on
      (real-I/O backends pace it against the wall clock via the
      realtime driver);
    * ``network`` — the fabric hosts attach to (``attach_host`` /
      ``send`` / path characteristics), or ``None`` when the caller
      supplies a simulated topology via ``adopt_network``;
    * :meth:`pair` — two connected :class:`Endpoint`\\ s for the shared
      recv-contract conformance suite and round-trip benchmarks.
    """

    #: short name used in metrics labels and reprs
    name = ""

    clock: Clock

    @property
    @abstractmethod
    def simulator(self):
        """The kernel this backend's world schedules on."""

    @property
    def network(self):
        """The fabric hosts attach to (None until one exists)."""
        return None

    def adopt_network(self, network):
        """Install a caller-built simulated topology as this backend's
        fabric.  Only meaningful for the sim substrate; real backends
        bring their own fabric and refuse."""
        raise RuntimeError(
            f"{type(self).__name__} provides its own fabric; "
            "attach_network() is a sim-substrate operation"
        )

    def impair(self, spec):
        """Wrap this backend's fabric in a deterministic
        :class:`~repro.transport.impair.ImpairedFabric` and return it.

        Only meaningful for the real substrates — the sim world injects
        hostility through :mod:`repro.netsim.faults` instead.  Must be
        called *before* systems are constructed over the backend (the
        stack captures ``backend.network`` at construction).
        """
        raise RuntimeError(
            f"{type(self).__name__} has no real fabric to impair; "
            "use repro.netsim.faults for the sim substrate"
        )

    @abstractmethod
    def pair(self, **kwargs) -> Tuple[Endpoint, Endpoint]:
        """Two connected endpoints (a <-> b) over this substrate."""

    def run(self, until: Optional[float] = None) -> None:
        """Advance this backend's world (sim: event dispatch until
        ``until``; real-I/O: wall-paced driving for ``until`` seconds)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release substrate resources (sockets, threads).  Idempotent."""

    def __enter__(self) -> "TransportBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
