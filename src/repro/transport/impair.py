"""Deterministic hostile-path injection for the real substrates.

``repro.netsim.faults`` makes the *simulated* network hostile; this
module does the same for the real one.  :class:`ImpairedFabric` wraps
any :class:`~repro.transport.fabric.RealFabric` (loopback or UDP) and
impairs each outgoing datagram — loss, duplication, byte corruption,
delay jitter, reordering — exactly the way a bad path would, while the
wrapped fabric keeps doing everything else (attachment, groups, path
characteristics, pooled-PDU wire-reference discipline).

Determinism is the whole point: every datagram's fate is drawn from a
private ``random.Random(f"{seed}|{index}")`` keyed by the datagram's
send index, with a fixed draw order, so the *decision sequence* depends
only on the spec's seed and the order frames hit the wire — never on
wall-clock timing, thread interleaving, or ``PYTHONHASHSEED``.  The
ordered :attr:`ImpairedFabric.trace` records each decision; two runs
whose stacks emit the same datagram sequence (e.g. loopback pairs
driven by a :class:`~repro.sim.clock.SteppedClock` with ``poll=0``)
produce byte-identical traces — the chaos acceptance suite asserts
exactly that via :meth:`ImpairedFabric.trace_digest`.

Corruption comes in two flavours, mirroring the two damage semantics
the stack distinguishes:

* ``"wire"`` — flip one payload byte and leave the CRC stale.  The
  receiver's codec refuses the datagram (``WireFormatError``), so upper
  layers experience it as loss: what a real UDP checksum gives you.
* ``"mark"`` — set the frame's *corrupted* flag and recompute the CRC,
  so the datagram arrives intact-but-marked: the simulated network's
  bit-error semantics, letting transport-level checksum mechanisms (and
  configurations without them) earn their keep on the real path.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass
from typing import List

from repro.netsim.frame import Frame, _FLAG_CORRUPTED, _U32

#: byte offset of the flags field inside an encoded frame
#: (magic 4B + version 1B, see repro.netsim.frame._FIXED)
_FLAGS_OFF = 5


@dataclass
class ImpairmentSpec:
    """Per-datagram impairment probabilities and magnitudes.

    All probabilities are independent per datagram; a single datagram
    can be duplicated *and* corrupted *and* delayed.  Loss wins: a
    dropped datagram is never also duplicated or delayed.
    """

    seed: int = 0
    #: P(drop the datagram entirely)
    loss: float = 0.0
    #: P(dispatch a second copy)
    dup: float = 0.0
    #: P(damage the datagram's bytes)
    corrupt: float = 0.0
    #: "wire" (stale CRC -> receiver drops) or "mark" (corrupted flag,
    #: valid CRC -> delivered damaged)
    corrupt_mode: str = "wire"
    #: max uniform extra delay per datagram, seconds
    jitter: float = 0.0
    #: P(hold the datagram back long enough to reorder)
    reorder: float = 0.0
    #: extra delay applied to reordered datagrams, seconds
    reorder_delay: float = 0.05

    def __post_init__(self) -> None:
        for name in ("loss", "dup", "corrupt", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.corrupt_mode not in ("wire", "mark"):
            raise ValueError(
                f"corrupt_mode must be 'wire' or 'mark', got {self.corrupt_mode!r}")
        if self.jitter < 0.0 or self.reorder_delay < 0.0:
            raise ValueError("delays must be non-negative")


def _corrupt_wire(data: bytes, rng: random.Random) -> bytes:
    """Flip one byte, leaving the CRC stale: the receiver will refuse."""
    pos = rng.randrange(len(data))
    flip = rng.randrange(1, 256)
    out = bytearray(data)
    out[pos] ^= flip
    return bytes(out)


def _corrupt_mark(data: bytes, rng: random.Random) -> bytes:
    """Set the frame's corrupted flag and re-seal the CRC: the receiver
    accepts a valid datagram carrying damaged-payload semantics."""
    out = bytearray(data)
    out[_FLAGS_OFF] |= _FLAG_CORRUPTED
    out[-4:] = _U32.pack(zlib.crc32(bytes(out[:-4])))
    return bytes(out)


class ImpairedFabric:
    """A hostile path wrapped around a healthy fabric.

    Delegates the whole network surface to the inner fabric and
    interposes only on the send path's dispatch step: the inner
    fabric's :meth:`~repro.transport.fabric.RealFabric._encode_for_send`
    still resolves destinations, encodes, and consumes the pooled wire
    reference (so pool discipline is untouched no matter what this
    wrapper drops), then each datagram is impaired and dispatched — now
    or, for jittered/reordered datagrams, via the backend's simulator so
    the realtime driver replays the hold-back in its own clock domain.
    """

    def __init__(self, inner, spec: ImpairmentSpec) -> None:
        self._inner = inner
        self.spec = spec
        #: ordered decision log, one line per datagram send
        self.trace: List[str] = []
        self._index = 0
        self._sim = inner.backend.simulator

    # -- delegation ------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def liveness(self):
        return self._inner.liveness

    @liveness.setter
    def liveness(self, value) -> None:
        self._inner.liveness = value

    @property
    def inner(self):
        """The wrapped fabric (escape hatch for tests/diagnostics)."""
        return self._inner

    # -- the impaired send path ------------------------------------------
    def send(self, frame: Frame) -> None:
        encoded = self._inner._encode_for_send(frame)
        if encoded is None:
            return
        data, dsts = encoded
        for dst in dsts:
            self._impair_dispatch(data, dst, frame)

    def _impair_dispatch(self, data: bytes, dst: str, frame: Frame) -> None:
        spec = self.spec
        idx = self._index
        self._index += 1
        # string-seeded so the stream is stable across runs and processes
        # (int hashing is PYTHONHASHSEED-independent too, but the string
        # key also namespaces the per-datagram streams unambiguously)
        rng = random.Random(f"{spec.seed}|{idx}")
        actions: List[str] = []
        # fixed draw order: loss, dup, corrupt, reorder, jitter
        if rng.random() < spec.loss:
            self.trace.append(f"{idx:06d} dst={dst} len={len(data)} drop")
            self._count_impair("drop")
            return
        copies = 1
        if rng.random() < spec.dup:
            copies = 2
            actions.append("dup")
            self._count_impair("dup")
        if rng.random() < spec.corrupt:
            if spec.corrupt_mode == "wire":
                data = _corrupt_wire(data, rng)
                actions.append("corrupt-wire")
            else:
                data = _corrupt_mark(data, rng)
                actions.append("corrupt-mark")
            self._count_impair("corrupt")
        delay = 0.0
        if rng.random() < spec.reorder:
            delay += spec.reorder_delay
            actions.append("reorder")
            self._count_impair("reorder")
        if spec.jitter > 0.0:
            j = rng.random() * spec.jitter
            delay += j
            actions.append(f"jitter={j * 1000.0:.3f}ms")
            self._count_impair("jitter")
        self.trace.append(
            f"{idx:06d} dst={dst} len={len(data)} "
            + (",".join(actions) if actions else "pass"))
        for _ in range(copies):
            if delay > 0.0:
                self._sim.schedule(delay, self._inner._dispatch,
                                   data, dst, frame)
            else:
                self._inner._dispatch(data, dst, frame)

    def trace_digest(self) -> str:
        """SHA-256 over the ordered decision log — the reproducibility
        witness the chaos acceptance suite compares across runs."""
        return hashlib.sha256("\n".join(self.trace).encode()).hexdigest()

    def _count_impair(self, action: str) -> None:
        self._inner._count("transport_impair_injected_total", action=action)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ImpairedFabric over {self._inner!r} spec={self.spec}>"
