"""Wire-level liveness: heartbeats out, dead-peer detection in.

A simulated network cannot silently lose a peer — crashes are injected
events the monitor can see.  A real path can: the process on the other
end of a UDP flow dies and nothing ever arrives again.  This module
gives the real substrates the missing failure detector:

* every :attr:`LivenessConfig.interval` seconds, one heartbeat frame
  (``frame.heartbeat = True``, no payload) goes to each watched peer
  through the normal fabric send path — so heartbeats traverse the
  impairment wrapper and the wire codec like any other frame;
* every frame *delivered* from a peer (data or heartbeat — the fabric
  calls :meth:`PeerLiveness.note_heard` before demux) refreshes that
  peer's lease;
* a peer silent for ``interval × miss_budget`` seconds is declared
  dead: bound endpoints are reset (their next ``recv`` returns a sticky
  ``ECONNRESET`` per the backend recv contract), death callbacks fire,
  and the fabric's ``route``/``path_links`` answers turn empty — which
  the unmodified :class:`~repro.mantts.monitor.NetworkMonitor` reports
  as *unreachable*, driving :class:`~repro.mantts.adaptation.
  AdaptationController`'s existing retune→degrade→teardown ladder and
  its flight-recorder dump.  No new control plane: liveness feeds the
  adaptation machinery the paper already specifies.

A peer heard from again after death is *revived* (routes reopen) but
endpoint resets stay sticky, exactly like a TCP connection that died
under the application: the wire may heal, the conversation does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from repro.netsim.frame import PRIO_CONTROL, Frame
from repro.sim.timers import Timer

#: on-wire size charged per heartbeat beacon (header-only frame)
HEARTBEAT_SIZE = 64


@dataclass
class LivenessConfig:
    """The two knobs of the failure detector."""

    #: seconds between heartbeat beacons to each watched peer
    interval: float = 0.5
    #: consecutive silent intervals before a peer is declared dead
    miss_budget: int = 3

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.miss_budget < 1:
            raise ValueError(
                f"miss_budget must be >= 1, got {self.miss_budget}")

    @property
    def deadline(self) -> float:
        """Silence budget in seconds: ``interval × miss_budget``."""
        return self.interval * self.miss_budget


def heartbeat_frame(src: str, dst: str, now: float) -> Frame:
    """One liveness beacon: control priority, no payload, heartbeat flag."""
    f = Frame(src, dst, HEARTBEAT_SIZE, payload=None,
              priority=PRIO_CONTROL, created_at=now)
    f.heartbeat = True
    return f


class PeerLiveness:
    """Per-peer failure detector for one real backend's fabric.

    Construct with the backend, the local host name heartbeats are
    sourced from, and a :class:`LivenessConfig`; then :meth:`watch` each
    peer and :meth:`start`.  Installs itself as ``fabric.liveness`` so
    the fabric refreshes leases on delivery and consumes heartbeat
    beacons before host demux.
    """

    def __init__(self, backend, local_name: str,
                 config: LivenessConfig | None = None) -> None:
        self.backend = backend
        self.local_name = local_name
        self.config = config if config is not None else LivenessConfig()
        self.clock = backend.clock
        self._fabric = backend.network
        if self._fabric is None:
            raise RuntimeError("backend has no fabric to watch")
        self.last_heard: Dict[str, float] = {}
        self.dead: Set[str] = set()
        self._endpoints: Dict[str, List] = {}
        self._death_cbs: List[Callable[[str], None]] = []
        self._timer = Timer(backend.simulator, self._tick,
                            interval=self.config.interval, periodic=True)
        self._fabric.liveness = self

    # -- wiring ----------------------------------------------------------
    def watch(self, peer: str) -> None:
        """Track ``peer``: heartbeat it and time out its silence."""
        self.last_heard.setdefault(peer, self.clock.now())

    def unwatch(self, peer: str) -> None:
        self.last_heard.pop(peer, None)
        self.dead.discard(peer)
        self._endpoints.pop(peer, None)

    def bind_endpoint(self, peer: str, endpoint) -> None:
        """Reset ``endpoint`` (sticky ``ECONNRESET``) when ``peer`` dies."""
        self._endpoints.setdefault(peer, []).append(endpoint)

    def on_death(self, cb: Callable[[str], None]) -> None:
        """Register ``cb(peer)`` to fire once per death transition."""
        self._death_cbs.append(cb)

    def start(self) -> None:
        if not self._timer.armed:
            self._timer.schedule()

    def stop(self) -> None:
        self._timer.cancel()

    # -- the detector ----------------------------------------------------
    def note_heard(self, peer: str) -> None:
        """A frame from ``peer`` was delivered: refresh its lease."""
        if peer not in self.last_heard:
            return  # unwatched peers carry no lease
        self.last_heard[peer] = self.clock.now()
        if peer in self.dead:
            self.dead.discard(peer)
            self._count("transport_liveness_revivals_total")

    def is_dead(self, peer: str) -> bool:
        return peer in self.dead

    def _tick(self) -> None:
        now = self.clock.now()
        deadline = self.config.deadline
        for peer, heard in list(self.last_heard.items()):
            if peer not in self.dead:
                self._fabric.send(heartbeat_frame(self.local_name, peer, now))
                self._count("transport_liveness_heartbeats_tx_total")
            if peer not in self.dead and now - heard > deadline:
                self._declare_dead(peer, now - heard)

    def _declare_dead(self, peer: str, silent_for: float) -> None:
        self.dead.add(peer)
        self._count("transport_liveness_deaths_total")
        for ep in self._endpoints.get(peer, []):
            ep._feed_reset()
        for cb in self._death_cbs:
            cb(peer)

    def _count(self, name: str) -> None:
        self._fabric._count(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PeerLiveness local={self.local_name} "
                f"watched={sorted(self.last_heard)} dead={sorted(self.dead)}>")
