"""Pacing the event kernel against a wall clock.

The simulated world runs the kernel as fast as events allow — virtual
time jumps from event to event.  Over a *real* substrate the same event
queue (MANTTS negotiation timeouts, TKO retransmission timers, rate
pacers) must elapse in genuine wall seconds, interleaved with I/O
arriving from sockets on other threads.

:class:`RealtimeDriver` is that interleave:

* it repeatedly advances ``sim.run(until=wall_now)`` so every timer fires
  within one poll interval of its wall deadline (``run`` is resumable and
  never moves time backward, so composing calls is safe);
* a thread-safe inbox (:meth:`post`) lets receiver threads inject work —
  e.g. "deliver this decoded frame to the host" — which the driver
  executes on *its* thread at the current sim frontier, keeping the whole
  protocol stack single-threaded exactly as in simulation;
* between rounds it sleeps until the earliest pending event, the run
  deadline, or a :meth:`post` wake-up, whichever is soonest.

The stack above never sees the difference: ``sim.now`` simply reads wall
seconds (within poll granularity) instead of virtual ones.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from typing import Callable, Iterable, List, Optional

from repro.sim.clock import WallClock

#: default sleep granularity; bounds timer-firing latency when idle
DEFAULT_POLL = 0.005


class RealtimeDriver:
    """Drives one simulator's event queue in wall time."""

    def __init__(self, sim, clock: Optional[WallClock] = None,
                 poll: float = DEFAULT_POLL) -> None:
        self.sim = sim
        self.clock = clock if clock is not None else WallClock()
        self.poll = poll
        self._inbox: deque = deque()
        self._wake = threading.Event()
        self._stopping = False
        #: wall instant (``time.monotonic``) of the last pacing round —
        #: the watchdog's stall signal
        self.last_round = time.monotonic()
        #: True while :meth:`run` (or a co-driving :func:`drive`) is live
        self.running = False
        self._thread_ident: Optional[int] = None

    # ------------------------------------------------------------------
    # cross-thread injection
    # ------------------------------------------------------------------
    def post(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` on the driver thread at the sim frontier.

        Safe from any thread (deque appends are atomic under the GIL);
        wakes the driver if it is sleeping.
        """
        self._inbox.append((fn, args))
        self._wake.set()

    def stop(self) -> None:
        """Make the current :meth:`run` return after its next round."""
        self._stopping = True
        self._wake.set()

    # ------------------------------------------------------------------
    # the pacing loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One pacing round: drain the inbox, fire due timers."""
        self.last_round = time.monotonic()
        self._thread_ident = threading.get_ident()
        inbox = self._inbox
        while inbox:
            fn, args = inbox.popleft()
            fn(*args)
        self.sim.run(until=self.clock.now())

    def run(self, duration: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None,
            poll: Optional[float] = None) -> None:
        """Pace the world for ``duration`` wall seconds (or until
        ``stop_when()`` turns true, or :meth:`stop` is called)."""
        if poll is None:
            poll = self.poll
        self._stopping = False
        end = None if duration is None else self.clock.now() + duration
        self.running = True
        try:
            while not self._stopping:
                self.step()
                if stop_when is not None and stop_when():
                    break
                now = self.clock.now()
                if end is not None and now >= end:
                    break
                sleep = poll
                nxt = self.sim.next_event_time()
                if nxt is not None:
                    sleep = min(sleep, nxt - now)
                if end is not None:
                    sleep = min(sleep, end - now)
                if sleep > 0 and not self._inbox:
                    self._wake.wait(sleep)
                    self._wake.clear()
            self.step()  # final drain so posted work is never stranded
        finally:
            self.running = False


def drive(drivers: Iterable[RealtimeDriver],
          duration: Optional[float] = None,
          stop_when: Optional[Callable[[], bool]] = None,
          poll: float = DEFAULT_POLL) -> None:
    """Co-drive several worlds from one thread.

    Used by in-process tests that stand up *two* full ADAPTIVE systems
    (initiator and responder) joined by a loopback fabric: each round
    steps every driver, so cross-system frames posted by one world are
    consumed by the other within one poll interval.
    """
    drivers = list(drivers)
    if not drivers:
        return
    lead = drivers[0]
    own_wakes = [d._wake for d in drivers]
    for d in drivers[1:]:
        d._wake = lead._wake  # one wake event, so any post ends the sleep
    for d in drivers:
        d.running = True
    try:
        end = None if duration is None else lead.clock.now() + duration
        while True:
            for d in drivers:
                d.step()
            if stop_when is not None and stop_when():
                break
            now = lead.clock.now()
            if end is not None and now >= end:
                break
            sleep = poll
            for d in drivers:
                nxt = d.sim.next_event_time()
                if nxt is not None:
                    sleep = min(sleep, nxt - d.clock.now())
            if end is not None:
                sleep = min(sleep, end - now)
            if sleep > 0 and not any(d._inbox for d in drivers):
                lead._wake.wait(sleep)
                lead._wake.clear()
        for d in drivers:
            d.step()
    finally:
        # restore private wake events: a co-driven driver later run solo
        # must not sleep on an event nobody sets for it
        for d, wake in zip(drivers, own_wakes):
            d._wake = wake
            d.running = False


class DriverWatchdog:
    """Detects a wedged pacing loop and files a flight-recorder incident.

    A healthy :class:`RealtimeDriver` stamps :attr:`~RealtimeDriver.
    last_round` every round — at least once per poll interval even when
    idle.  If a posted callback or a timer handler blocks (a deadlocked
    lock, an accidental blocking socket call), the stamp goes stale
    while ``running`` stays true.  The watchdog samples from its own
    daemon thread; after ``stall_after`` stale seconds it captures the
    driver thread's current stack via ``sys._current_frames`` and files
    one incident per stall episode into its
    :class:`~repro.unites.obs.flight.FlightRecorder` (and the incident
    list), then re-arms when the loop comes back.

    Incident dumps share the flight-dump shape (``trigger`` +
    ``records``) so ``python -m repro.unites.obs.flight`` renders them.
    """

    def __init__(self, driver: RealtimeDriver, stall_after: float = 1.0,
                 check_every: float = 0.1, recorder=None,
                 on_incident: Optional[Callable[[dict], None]] = None) -> None:
        from repro.unites.obs.flight import FlightRecorder

        if stall_after <= 0.0:
            raise ValueError("stall_after must be positive")
        self.driver = driver
        self.stall_after = float(stall_after)
        self.check_every = float(check_every)
        self.recorder = recorder if recorder is not None else FlightRecorder(64)
        self.on_incident = on_incident
        self.incidents: List[dict] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._tripped = False  # one incident per stall episode

    def start(self) -> "DriverWatchdog":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._watch, name="driver-watchdog", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- the sampling loop ----------------------------------------------
    def _watch(self) -> None:
        while not self._stop.wait(self.check_every):
            d = self.driver
            if not d.running:
                self._tripped = False
                continue
            stale = time.monotonic() - d.last_round
            if stale < self.stall_after:
                self._tripped = False
                continue
            if not self._tripped:
                self._tripped = True
                self._file_incident(stale)

    def _file_incident(self, stale: float) -> None:
        import sys

        stack = None
        ident = self.driver._thread_ident
        frame = sys._current_frames().get(ident) if ident is not None else None
        if frame is not None:
            stack = "".join(traceback.format_stack(frame))
        incident = {
            "connection": "driver",
            "trigger": {
                "kind": "watchdog-stall",
                "time": self.driver.clock.now(),
                "reason": (f"pacing loop silent for {stale:.3f}s "
                           f"(stall_after={self.stall_after}s)"),
            },
            "stalled_for": stale,
            "driver_thread": ident,
            "driver_stack": stack,
            "records": [dict(r) for r in self.recorder.records],
        }
        self.recorder.note("watchdog-stall", self.driver.clock.now(),
                           stalled_for=round(stale, 3))
        self.incidents.append(incident)
        if self.on_incident is not None:
            self.on_incident(incident)
