"""Pacing the event kernel against a wall clock.

The simulated world runs the kernel as fast as events allow — virtual
time jumps from event to event.  Over a *real* substrate the same event
queue (MANTTS negotiation timeouts, TKO retransmission timers, rate
pacers) must elapse in genuine wall seconds, interleaved with I/O
arriving from sockets on other threads.

:class:`RealtimeDriver` is that interleave:

* it repeatedly advances ``sim.run(until=wall_now)`` so every timer fires
  within one poll interval of its wall deadline (``run`` is resumable and
  never moves time backward, so composing calls is safe);
* a thread-safe inbox (:meth:`post`) lets receiver threads inject work —
  e.g. "deliver this decoded frame to the host" — which the driver
  executes on *its* thread at the current sim frontier, keeping the whole
  protocol stack single-threaded exactly as in simulation;
* between rounds it sleeps until the earliest pending event, the run
  deadline, or a :meth:`post` wake-up, whichever is soonest.

The stack above never sees the difference: ``sim.now`` simply reads wall
seconds (within poll granularity) instead of virtual ones.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterable, Optional

from repro.sim.clock import WallClock

#: default sleep granularity; bounds timer-firing latency when idle
DEFAULT_POLL = 0.005


class RealtimeDriver:
    """Drives one simulator's event queue in wall time."""

    def __init__(self, sim, clock: Optional[WallClock] = None,
                 poll: float = DEFAULT_POLL) -> None:
        self.sim = sim
        self.clock = clock if clock is not None else WallClock()
        self.poll = poll
        self._inbox: deque = deque()
        self._wake = threading.Event()
        self._stopping = False

    # ------------------------------------------------------------------
    # cross-thread injection
    # ------------------------------------------------------------------
    def post(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` on the driver thread at the sim frontier.

        Safe from any thread (deque appends are atomic under the GIL);
        wakes the driver if it is sleeping.
        """
        self._inbox.append((fn, args))
        self._wake.set()

    def stop(self) -> None:
        """Make the current :meth:`run` return after its next round."""
        self._stopping = True
        self._wake.set()

    # ------------------------------------------------------------------
    # the pacing loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One pacing round: drain the inbox, fire due timers."""
        inbox = self._inbox
        while inbox:
            fn, args = inbox.popleft()
            fn(*args)
        self.sim.run(until=self.clock.now())

    def run(self, duration: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None,
            poll: Optional[float] = None) -> None:
        """Pace the world for ``duration`` wall seconds (or until
        ``stop_when()`` turns true, or :meth:`stop` is called)."""
        if poll is None:
            poll = self.poll
        self._stopping = False
        end = None if duration is None else self.clock.now() + duration
        while not self._stopping:
            self.step()
            if stop_when is not None and stop_when():
                break
            now = self.clock.now()
            if end is not None and now >= end:
                break
            sleep = poll
            nxt = self.sim.next_event_time()
            if nxt is not None:
                sleep = min(sleep, nxt - now)
            if end is not None:
                sleep = min(sleep, end - now)
            if sleep > 0 and not self._inbox:
                self._wake.wait(sleep)
                self._wake.clear()
        self.step()  # final drain so posted work is never stranded


def drive(drivers: Iterable[RealtimeDriver],
          duration: Optional[float] = None,
          stop_when: Optional[Callable[[], bool]] = None,
          poll: float = DEFAULT_POLL) -> None:
    """Co-drive several worlds from one thread.

    Used by in-process tests that stand up *two* full ADAPTIVE systems
    (initiator and responder) joined by a loopback fabric: each round
    steps every driver, so cross-system frames posted by one world are
    consumed by the other within one poll interval.
    """
    drivers = list(drivers)
    if not drivers:
        return
    lead = drivers[0]
    for d in drivers[1:]:
        d._wake = lead._wake  # one wake event, so any post ends the sleep
    end = None if duration is None else lead.clock.now() + duration
    while True:
        for d in drivers:
            d.step()
        if stop_when is not None and stop_when():
            break
        now = lead.clock.now()
        if end is not None and now >= end:
            break
        sleep = poll
        for d in drivers:
            nxt = d.sim.next_event_time()
            if nxt is not None:
                sleep = min(sleep, nxt - d.clock.now())
        if end is not None:
            sleep = min(sleep, end - now)
        if sleep > 0 and not any(d._inbox for d in drivers):
            lead._wake.wait(sleep)
            lead._wake.clear()
    for d in drivers:
        d.step()
