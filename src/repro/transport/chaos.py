"""The chaos harness: one lossy transfer, measured end to end.

:func:`run_impaired_transfer` stands up two full ADAPTIVE systems over a
cross-connected loopback fabric pair, impairs *both* directions with one
:class:`~repro.transport.impair.ImpairmentSpec`, negotiates MANTTS with
timeout-retry enabled, pushes ``n_messages`` checksummed payloads
through TKO, and reports what survived: delivery count, digest match,
pooled-PDU balance, and the ordered impairment traces.

Two modes share the code path:

* ``deterministic=True`` — both worlds share a
  :class:`~repro.sim.clock.SteppedClock` and are co-driven with
  ``poll=0``, so the entire run (protocol timers, impairment decisions,
  retransmissions) is a single-threaded deterministic replay: two
  fresh-process runs with the same arguments produce byte-identical
  traces.  (In one process, message ids from the global counter shift
  encoded lengths between calls; the *decision* sequence still
  repeats.)  This is the acceptance suite's reproducibility mode.
* ``deterministic=False`` — a real :class:`~repro.sim.clock.WallClock`,
  real sleeps: the bench mode, measuring genuine lossy-path recovery
  time.

Used by ``tests/transport/test_chaos_acceptance.py``,
``benchmarks/record_bench.py --only transport``, and
``examples/lossy_transfer_demo.py``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.sim.clock import SteppedClock, WallClock
from repro.transport.impair import ImpairmentSpec
from repro.transport.loopback import loopback_pair

SERVICE_PORT = 7100


def _digest(chunks) -> str:
    h = hashlib.sha256()
    for c in sorted(chunks):
        h.update(bytes(c))
    return h.hexdigest()


def run_impaired_transfer(
    spec: Optional[ImpairmentSpec] = None,
    n_messages: int = 10,
    msg_size: int = 2048,
    seed: int = 1,
    deterministic: bool = True,
    step_dt: float = 2e-4,
    connect_cap: float = 30.0,
    transfer_cap: float = 60.0,
    negotiation_retries: int = 4,
    negotiation_backoff: float = 0.25,
) -> Dict[str, Any]:
    """One checksummed n×size transfer over a hostile loopback path.

    Returns a result dict; see the assertions in the chaos acceptance
    suite for the guarantees each field backs.
    """
    # repro.core pulls in the whole stack; keep the module import light
    from repro.core.system import AdaptiveSystem
    from repro.mantts.acd import ACD
    from repro.tko.pdu import PDU_POOL

    if spec is None:
        spec = ImpairmentSpec(seed=seed, loss=0.2, dup=0.1, reorder=0.1)
    clock = SteppedClock(dt=step_dt) if deterministic else WallClock()
    poll = 0.0 if deterministic else None
    ta, tb = loopback_pair(seed=seed, clock=clock)
    imp_a = ta.impair(spec)
    imp_b = tb.impair(spec)
    pool0 = (PDU_POOL.acquired, PDU_POOL.recycled)

    sys_a = AdaptiveSystem(seed=seed, transport=ta)
    sys_b = AdaptiveSystem(seed=seed + 1, transport=tb)
    a = sys_a.node("A", mips=400.0)
    b = sys_b.node("B", mips=400.0)
    for node in (a, b):
        node.mantts.negotiation_retries = negotiation_retries
        node.mantts.negotiation_backoff = negotiation_backoff

    got: list = []
    b.mantts.register_service(SERVICE_PORT, on_deliver=lambda d, m: got.append(d))

    outcome: Dict[str, Any] = {}
    conn = a.mantts.open(
        ACD(participants=("B",), service_port=SERVICE_PORT),
        on_connected=lambda c: outcome.setdefault("connected", True),
        on_failed=lambda reason: outcome.setdefault("failed", reason),
    )
    sys_a.run(until=ta.clock.now() + connect_cap,
              stop_when=lambda: bool(outcome), poll=poll)

    payloads = []
    if outcome.get("connected"):
        for i in range(n_messages):
            body = (f"{i:04d}:".encode()
                    + bytes((i + j) & 0xFF for j in range(msg_size)))
            payloads.append(body[:msg_size])
        for p in payloads:
            conn.send(p)
        sys_a.run(until=ta.clock.now() + transfer_cap,
                  stop_when=lambda: len(got) >= len(payloads), poll=poll)
        conn.close()

        # quiesce: FIN/ACK exchanges, in-flight duplicates, and lossy
        # signalling retransmissions must all resolve before the pool
        # balance means anything — run until it does (bounded)
        def _balanced() -> bool:
            return (PDU_POOL.acquired - pool0[0]
                    == PDU_POOL.recycled - pool0[1])

        sys_a.run(until=ta.clock.now() + 0.5, poll=poll)
        sys_a.run(until=ta.clock.now() + 60.0,
                  stop_when=_balanced, poll=poll)

    trace = list(imp_a.trace) + ["--"] + list(imp_b.trace)
    result: Dict[str, Any] = {
        "connected": bool(outcome.get("connected")),
        "failed": outcome.get("failed"),
        "sent": len(payloads),
        "delivered": len(got),
        "digest_ok": bool(payloads) and _digest(got) == _digest(payloads),
        "trace": trace,
        "trace_digest": hashlib.sha256("\n".join(trace).encode()).hexdigest(),
        "frames_sent": imp_a.frames_sent + imp_b.frames_sent,
        "send_errors": imp_a.send_errors + imp_b.send_errors,
        "pool_delta": (PDU_POOL.acquired - pool0[0],
                       PDU_POOL.recycled - pool0[1]),
        "timeline_s": ta.clock.now(),
    }
    ta.close()
    tb.close()
    return result
