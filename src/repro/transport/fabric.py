"""The network surface real substrates present to the stack above.

``Host``, MANTTS signalling, the path monitor, and TKO sessions all talk
to "the network" through one informal surface (attach/detach, ``send``,
group membership, route and path characteristics, a shared RNG).  In
simulation that surface is :class:`repro.netsim.network.Network`;
:class:`RealFabric` is the same surface backed by a real substrate —
in-process loopback queues or UDP sockets — so the entire protocol stack
runs unmodified on top.

Path characteristics on a real substrate are *static estimates* from one
:class:`VirtualLink` (a real path's queues are invisible to us); MANTTS
admission and the monitor's congestion math read them exactly as they
read simulated links.  Frames leave through the versioned wire codec
(:func:`repro.netsim.frame.encode_frame`), and the fabric consumes the
wire's reference on pooled PDUs — on success *and on every failure
path* — mirroring the simulated receive path's release discipline so
``PDU_POOL`` never leaks shells across a real send.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.netsim.frame import Frame, WireFormatError, encode_frame_into
from repro.sim.rng import RngStreams
from repro.tko.pdu import PDU
from repro.tko.slab import SlabArena
from repro.unites.obs import TELEMETRY


class _LinkStats:
    """The two counters the monitor's loss math reads."""

    __slots__ = ("enqueued", "dropped_overflow")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dropped_overflow = 0


class VirtualLink:
    """A static link model standing in for a real path's one hop.

    Real substrates cannot observe their queues, so the occupancy reads
    as empty and the drop counters stay zero — the monitor sees an
    unloaded path, which is the honest prior for a local socket.
    """

    def __init__(self, bandwidth_bps: float = 1e9, delay: float = 50e-6,
                 mtu: int = 65507, queue_limit: int = 64,
                 ber: float = 0.0) -> None:
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.mtu = int(mtu)
        self.queue_limit = int(queue_limit)
        self.ber = float(ber)
        self.queue_len = 0
        self.stats = _LinkStats()

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps


class RealFabric:
    """Network-surface base for the loopback and UDP substrates.

    Subclasses implement :meth:`_transmit` (move one encoded datagram to
    the named destination) and may override :meth:`_local_names`.
    Delivery re-enters the stack via the destination driver's inbox, so
    protocol code always runs on its own world's thread.
    """

    #: metrics label identifying the substrate ("loopback" / "udp")
    kind = "real"

    def __init__(self, rng: Optional[RngStreams] = None,
                 link: Optional[VirtualLink] = None) -> None:
        self._handlers: Dict[str, Callable[[Frame], None]] = {}
        self.groups: Dict[str, Set[str]] = {}
        self.rng = rng if rng is not None else RngStreams(0)
        self.link = link if link is not None else VirtualLink()
        self.topology_version = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_delivered = 0
        self.send_errors = 0
        #: optional :class:`repro.transport.liveness.PeerLiveness`; when
        #: set, every delivered frame refreshes the sender's lease and
        #: heartbeat beacons are consumed before host delivery
        self.liveness = None
        #: reusable encode staging buffer — every outgoing datagram is
        #: written in place by :func:`encode_frame_into`, then snapshotted
        #: once (substrates hold datagrams asynchronously)
        self._wire_buf = bytearray(2048)
        #: slab arena for decoded payload storage on this endpoint's
        #: protocol thread (see repro.tko.slab); substrates that decode on
        #: a different thread must pass ``arena=None`` to the codec
        self.arena = SlabArena()

    # ------------------------------------------------------------------
    # host attachment (Host.__init__ / teardown call these)
    # ------------------------------------------------------------------
    def attach_host(self, name: str, deliver: Callable[[Frame], None]) -> None:
        self._handlers[name] = deliver

    def detach_host(self, name: str) -> None:
        self._handlers.pop(name, None)

    # ------------------------------------------------------------------
    # group membership (MANTTS multicast signalling bookkeeping)
    # ------------------------------------------------------------------
    def join_group(self, group: str, host: str) -> None:
        self.groups.setdefault(group, set()).add(host)

    def leave_group(self, group: str, host: str) -> None:
        members = self.groups.get(group)
        if members is not None:
            members.discard(host)

    def group_members(self, group: str) -> set:
        return set(self.groups.get(group, set()))

    # ------------------------------------------------------------------
    # path characteristics — static VirtualLink estimates
    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> Optional[List[str]]:
        if self.liveness is not None and self.liveness.is_dead(dst):
            return None  # the monitor reads "no route" as unreachable
        return [src, dst]

    def path_links(self, src: str, dst: str) -> List[VirtualLink]:
        if self.liveness is not None and self.liveness.is_dead(dst):
            return []
        return [self.link]

    def path_mtu(self, src: str, dst: str) -> Optional[int]:
        return self.link.mtu

    def path_propagation_delay(self, src: str, dst: str) -> Optional[float]:
        return self.link.delay

    def path_bottleneck_bps(self, src: str, dst: str) -> Optional[float]:
        return self.link.bandwidth_bps

    def path_queue_occupancy(self, src: str, dst: str) -> float:
        return 0.0

    def path_ber(self, src: str, dst: str) -> float:
        return self.link.ber

    def nominal_rtt(self, src: str, dst: str, size: int = 1500) -> Optional[float]:
        one_way = self.link.delay + self.link.serialization_time(size)
        return 2.0 * one_way

    # ------------------------------------------------------------------
    # the send path: resolve → encode → consume wire ref → transmit
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Carry one frame to its destination(s) over the real substrate.

        Group destinations fan out as independent unicast copies (real
        substrates have no delivery tree).  The pooled wire reference is
        consumed here no matter what happens — encode error, unknown
        destination, or transmit failure — because past this point no
        receive path in this process will ever release it.

        The path splits into :meth:`_encode_for_send` (resolve + encode
        + consume the wire reference) and :meth:`_dispatch` (move one
        datagram, count it) so an impairment wrapper can interpose on
        delivery without re-implementing pool discipline (see
        :class:`repro.transport.impair.ImpairedFabric`).
        """
        encoded = self._encode_for_send(frame)
        if encoded is None:
            return
        data, dsts = encoded
        for dst in dsts:
            self._dispatch(data, dst, frame)

    def _encode_for_send(
            self, frame: Frame) -> Optional[Tuple[bytes, List[str]]]:
        """Resolve destinations and encode ``frame``, consuming the
        pooled wire reference.  Returns ``None`` on encode failure."""
        dsts = [frame.dst]
        members = self.groups.get(frame.dst)
        if members is not None:
            dsts = sorted(m for m in members if m != frame.src)
        pdu = frame.payload if isinstance(frame.payload, PDU) else None
        try:
            # stage into the reusable buffer (payload segments stream in
            # with one copy), snapshot once for the async substrate
            data = bytes(encode_frame_into(frame, self._wire_buf))
        except WireFormatError:
            self.send_errors += 1
            self._count("transport_send_errors_total", reason="encode")
            return None
        finally:
            if pdu is not None:
                pdu.release()  # the wire's reference, consumed either way
        return data, dsts

    def _dispatch(self, data: bytes, dst: str, frame: Frame) -> None:
        """Move one encoded datagram to ``dst``, counting the attempt."""
        try:
            self._transmit(data, dst, frame)
        except (KeyError, OSError):
            self.send_errors += 1
            self._count("transport_send_errors_total", reason="transmit")
            return
        self.frames_sent += 1
        self.bytes_sent += len(data)
        self._count("transport_frames_sent_total")
        self._count("transport_bytes_sent_total", by=len(data))

    def deliver(self, frame: Frame) -> None:
        """Hand a decoded frame to the attached host (driver thread)."""
        if self.liveness is not None:
            self.liveness.note_heard(frame.src)
            if frame.heartbeat:
                self._count("transport_liveness_heartbeats_rx_total")
                return  # beacons prove the wire; they never reach hosts
        elif frame.heartbeat:
            return
        handler = self._handlers.get(frame.dst)
        if handler is None:
            self._count("transport_frames_unrouted_total")
            payload = frame.payload
            if isinstance(payload, PDU) and payload.message is not None:
                # an undeliverable decoded frame surrenders its slab claim
                payload.message.release_payload()
            return
        self.frames_delivered += 1
        self._count("transport_frames_delivered_total")
        handler(frame)

    def _transmit(self, data: bytes, dst: str, frame: Frame) -> None:
        raise NotImplementedError

    def _count(self, name: str, by: int = 1, **labels) -> None:
        if TELEMETRY.enabled:
            labels.setdefault("backend", self.kind)
            TELEMETRY.metrics.counter(
                name, labels=labels,
                help="transport substrate counters (real backends)",
            ).inc(by)
