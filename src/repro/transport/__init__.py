"""repro.transport — the pluggable substrate under the ADAPTIVE stack.

One CORTEX-style contract (:class:`TransportBackend` / :class:`Endpoint`
with explicit ``ETIMEDOUT``/``ECONNRESET`` recv results), three
substrates:

==============  =======  ============================================
backend         clock    use when
==============  =======  ============================================
``SimBackend``  sim      default; deterministic experiments — bit-
                         identical to the pre-refactor wiring
``LoopbackBackend``  wall  fast in-process wall-clock tests, no sockets
``UdpBackend``  wall     real OS processes exchanging datagrams
==============  =======  ============================================

See ``docs/transports.md`` for the full table, wire-format spec, and
sim-vs-wall clock rules.
"""

from repro.transport.base import (
    ECONNRESET,
    ETIMEDOUT,
    Endpoint,
    RecvResult,
    TransportBackend,
)
from repro.transport.fabric import RealFabric, VirtualLink
from repro.transport.impair import ImpairedFabric, ImpairmentSpec
from repro.transport.liveness import LivenessConfig, PeerLiveness
from repro.transport.loopback import LoopbackBackend, loopback_pair
from repro.transport.realtime import DriverWatchdog, RealtimeDriver, drive
from repro.transport.sim import SimBackend
from repro.transport.udp import UdpBackend

__all__ = [
    "ECONNRESET",
    "ETIMEDOUT",
    "Endpoint",
    "RecvResult",
    "TransportBackend",
    "RealFabric",
    "VirtualLink",
    "ImpairedFabric",
    "ImpairmentSpec",
    "LivenessConfig",
    "PeerLiveness",
    "LoopbackBackend",
    "loopback_pair",
    "DriverWatchdog",
    "RealtimeDriver",
    "drive",
    "SimBackend",
    "UdpBackend",
]
