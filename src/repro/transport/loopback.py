"""In-process loopback substrate: real wall clock, zero sockets.

Two uses, both wall-domain:

* :meth:`LoopbackBackend.pair` — two queue-connected endpoints for the
  recv-contract conformance suite and round-trip benchmarks (no sockets,
  so timing noise is just thread scheduling);
* a *fabric* pair (:func:`loopback_pair`) — two full ADAPTIVE systems in
  one process, cross-connected so every frame leaves one world through
  the versioned wire codec and re-enters the other through its realtime
  driver's inbox.  This is the fastest way to exercise MANTTS
  negotiation + TKO data flow over a genuinely wall-clocked substrate
  without spawning processes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.netsim.frame import WireFormatError, decode_frame
from repro.sim.clock import Clock, WallClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.transport.base import ECONNRESET, TransportBackend, _BufferedEndpoint
from repro.transport.fabric import RealFabric, VirtualLink
from repro.transport.realtime import RealtimeDriver, drive


class LoopbackEndpoint(_BufferedEndpoint):
    """One side of an in-process byte pipe."""

    backend = "loopback"

    def __init__(self, clock: WallClock) -> None:
        super().__init__(clock)
        self._peer: Optional["LoopbackEndpoint"] = None

    def send(self, data: bytes) -> int:
        if self._closed or self._reset:
            return ECONNRESET
        self._peer._feed(bytes(data))
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._peer._feed_eof()

    def abort(self) -> None:
        self._closed = True
        self._peer._feed_reset()

    def keepalive(self) -> None:
        if not (self._closed or self._reset):
            self._peer._feed_keepalive()


class LoopbackFabric(RealFabric):
    """The network surface of one system in a cross-connected pair.

    A frame encodes on the sender's thread, decodes immediately (the
    codec round-trip is the point — it proves the wire format carries
    everything the receiving stack needs), and is posted to the owning
    driver's inbox so delivery happens on the destination world's thread.
    """

    kind = "loopback"

    def __init__(self, backend: "LoopbackBackend",
                 rng: Optional[RngStreams] = None,
                 link: Optional[VirtualLink] = None) -> None:
        super().__init__(rng=rng, link=link)
        self.backend = backend

    def _transmit(self, data: bytes, dst: str, frame) -> None:
        target = self.backend._locate(dst)
        if target is None:
            raise KeyError(dst)
        driver, fabric = target
        # the receiver-side decode happens here on the sender's thread;
        # a damaged datagram (impairment's "wire" corruption) is the
        # *receiver's* loss, not a sender error
        try:
            # the receiving fabric's slab arena stores the payload (both
            # worlds are co-driven from one thread, so this is safe)
            decoded = decode_frame(data, arena=fabric.arena)
        except WireFormatError:
            fabric._count("transport_decode_errors_total")
            return
        driver.post(fabric.deliver, decoded)


class LoopbackBackend(TransportBackend):
    """One system's wall-clock in-process substrate.

    Construct two and :meth:`connect` them (or use :func:`loopback_pair`)
    to join two ADAPTIVE systems; :meth:`run` then co-drives both worlds
    from the calling thread.
    """

    name = "loopback"

    def __init__(self, clock: Optional[Clock] = None,
                 seed: int = 0, link: Optional[VirtualLink] = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._sim = Simulator()
        self.driver = RealtimeDriver(self._sim, self.clock)
        self._fabric = LoopbackFabric(self, rng=RngStreams(seed), link=link)
        self.peer: Optional["LoopbackBackend"] = None

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def network(self):
        return self._fabric

    def impair(self, spec):
        """Make this side's sends hostile (see
        :class:`~repro.transport.impair.ImpairedFabric`).  Call before
        constructing systems over the backend; returns the wrapper."""
        from repro.transport.impair import ImpairedFabric

        self._fabric = ImpairedFabric(self._fabric, spec)
        return self._fabric

    def connect(self, other: "LoopbackBackend") -> None:
        """Cross-connect two backends into one two-system fabric."""
        self.peer = other
        other.peer = self

    def _locate(self, dst: str):
        """Which (driver, fabric) owns host ``dst`` — local side first."""
        if dst in self._fabric._handlers:
            return self.driver, self._fabric
        if self.peer is not None and dst in self.peer._fabric._handlers:
            return self.peer.driver, self.peer._fabric
        return None

    # ------------------------------------------------------------------
    def pair(self, **kwargs) -> Tuple[LoopbackEndpoint, LoopbackEndpoint]:
        a = LoopbackEndpoint(self.clock)
        b = LoopbackEndpoint(self.clock)
        a._peer, b._peer = b, a
        return a, b

    def run(self, until: Optional[float] = None, stop_when=None,
            poll: Optional[float] = None) -> None:
        """Advance this world (and the peered one) in wall time until the
        shared timeline reaches ``until`` or ``stop_when()`` turns true."""
        duration = None if until is None else max(0.0, until - self.clock.now())
        drivers = [self.driver]
        if self.peer is not None:
            drivers.append(self.peer.driver)
        drive(drivers, duration=duration, stop_when=stop_when,
              poll=poll if poll is not None else self.driver.poll)

    def close(self) -> None:
        self.driver.stop()


def loopback_pair(seed: int = 0,
                  link: Optional[VirtualLink] = None,
                  clock: Optional[Clock] = None
                  ) -> Tuple[LoopbackBackend, LoopbackBackend]:
    """Two cross-connected backends sharing one wall clock, ready to be
    handed to two ``AdaptiveSystem`` constructions.

    Pass a :class:`~repro.sim.clock.SteppedClock` as ``clock`` (and
    drive with ``poll=0``) for a fully deterministic wall-domain run —
    the chaos acceptance suite's reproducibility mode.
    """
    if clock is None:
        clock = WallClock()
    a = LoopbackBackend(clock=clock, seed=seed, link=link)
    b = LoopbackBackend(clock=clock, seed=seed + 1, link=link)
    a.connect(b)
    return a, b
