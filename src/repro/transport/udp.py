"""Real UDP substrate: asyncio datagram transports, one loop thread.

The backend owns a private asyncio event loop on a daemon thread.  All
socket I/O happens there; all *protocol* work happens on the caller's
thread via the realtime driver — received datagrams are decoded on the
loop thread (the codec is pure) and posted to the driver's inbox, so the
ADAPTIVE stack stays single-threaded exactly as in simulation.

Two layers ride the same loop:

* :class:`UdpFabric` — the network surface for a full system: named
  peers (``{host_name: (ip, port)}``), frames out through the versioned
  wire codec, pooled-PDU wire references consumed on success and every
  failure path (see :class:`~repro.transport.fabric.RealFabric`);
* :class:`UdpEndpoint` pairs — the conformance/bench endpoints, framing
  the byte-pipe contract onto datagrams with a one-byte type prefix
  (``D`` data, ``F`` fin, ``R`` reset, ``H`` keepalive).  Loopback UDP
  preserves order and never drops in practice, which is all the
  contract tests need.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional, Tuple

from repro.netsim.frame import WireFormatError, decode_frame
from repro.sim.clock import WallClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.transport.base import ECONNRESET, TransportBackend, _BufferedEndpoint
from repro.transport.fabric import RealFabric, VirtualLink
from repro.transport.realtime import RealtimeDriver

_CALL_TIMEOUT = 5.0  # bound every cross-thread loop call (hung-socket guard)


class _FabricProtocol(asyncio.DatagramProtocol):
    """Receives fabric datagrams on the loop thread, hands decoded frames
    to the driver thread."""

    def __init__(self, backend: "UdpBackend") -> None:
        self.backend = backend

    def datagram_received(self, data: bytes, addr) -> None:
        fabric = self.backend._fabric
        try:
            frame = decode_frame(data)
        except WireFormatError:
            fabric._count("transport_decode_errors_total")
            return
        # learn the sender's address, so a responder bound on port 0 can
        # reply without out-of-band peer configuration — and *relearn* it
        # when the source moves, so a peer that restarts on a new port is
        # reachable again instead of pinned to its first-seen address
        known = fabric.peers.get(frame.src)
        here = (addr[0], addr[1])
        if known != here:
            fabric.peers[frame.src] = here
            if known is not None:
                fabric.peer_rebinds += 1
                fabric._count("transport_peer_rebinds_total")
        fabric._count("transport_bytes_received_total", by=len(data))
        self.backend.driver.post(fabric.deliver, frame)


class UdpFabric(RealFabric):
    """Network surface carrying frames as UDP datagrams to named peers."""

    kind = "udp"

    def __init__(self, backend: "UdpBackend",
                 peers: Optional[Dict[str, Tuple[str, int]]] = None,
                 rng: Optional[RngStreams] = None,
                 link: Optional[VirtualLink] = None) -> None:
        super().__init__(rng=rng, link=link)
        self.backend = backend
        self.peers: Dict[str, Tuple[str, int]] = dict(peers or {})
        self.peer_rebinds = 0
        self._transport: Optional[asyncio.DatagramTransport] = None

    def add_peer(self, name: str, host: str, port: int) -> None:
        self.peers[name] = (host, port)

    def _transmit(self, data: bytes, dst: str, frame) -> None:
        if dst in self._handlers:  # self-send: skip the socket entirely
            try:
                # same-thread decode: slab-store the payload locally
                # (socket receives decode on the loop thread and must
                # stay arena-free — see _FabricProtocol)
                decoded = decode_frame(data, arena=self.arena)
            except WireFormatError:
                self._count("transport_decode_errors_total")
                return
            self.backend.driver.post(self.deliver, decoded)
            return
        addr = self.peers[dst]  # KeyError -> counted by RealFabric.send
        try:
            self.backend._loop.call_soon_threadsafe(
                self._transport.sendto, data, addr)
        except RuntimeError as exc:  # loop closed mid-send
            raise OSError(str(exc)) from exc


class _EndpointProtocol(asyncio.DatagramProtocol):
    """One conformance endpoint's socket: unframe D/F/R datagrams into
    the shared buffered-endpoint machinery."""

    def __init__(self, endpoint: "UdpEndpoint") -> None:
        self.endpoint = endpoint

    def datagram_received(self, data: bytes, addr) -> None:
        if not data:
            return
        kind, payload = data[:1], data[1:]
        if kind == b"D":
            self.endpoint._feed(payload)
        elif kind == b"F":
            self.endpoint._feed_eof()
        elif kind == b"R":
            self.endpoint._feed_reset()
        elif kind == b"H":
            self.endpoint._feed_keepalive()


class UdpEndpoint(_BufferedEndpoint):
    """One side of a datagram-framed byte pipe on 127.0.0.1."""

    backend = "udp"

    def __init__(self, owner: "UdpBackend") -> None:
        super().__init__(owner.clock)
        self._owner = owner
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._peer_addr: Optional[Tuple[str, int]] = None

    def _open(self) -> Tuple[str, int]:
        transport, _ = self._owner._call(
            self._owner._loop.create_datagram_endpoint(
                lambda: _EndpointProtocol(self), local_addr=("127.0.0.1", 0)))
        self._transport = transport
        return transport.get_extra_info("sockname")[:2]

    def _sendto(self, datagram: bytes) -> None:
        try:
            self._owner._loop.call_soon_threadsafe(
                self._transport.sendto, datagram, self._peer_addr)
        except RuntimeError:
            pass  # backend closed under this endpoint; drop like the wire

    def send(self, data: bytes) -> int:
        if self._closed or self._reset:
            return ECONNRESET
        self._sendto(b"D" + bytes(data))
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sendto(b"F")

    def abort(self) -> None:
        self._closed = True
        self._sendto(b"R")

    def keepalive(self) -> None:
        if not (self._closed or self._reset):
            self._sendto(b"H")


class UdpBackend(TransportBackend):
    """The real-socket substrate for one ADAPTIVE system (or process).

    ``local_name`` + ``bind`` stand up the fabric socket immediately;
    ``backend.port`` then reports the kernel-chosen port (bind port 0 in
    tests — never collide in CI).  Peers may be declared up front or via
    ``backend.network.add_peer`` once the other process reports its port.
    """

    name = "udp"

    def __init__(self, local_name: Optional[str] = None,
                 bind: Tuple[str, int] = ("127.0.0.1", 0),
                 peers: Optional[Dict[str, Tuple[str, int]]] = None,
                 seed: int = 0, clock: Optional[WallClock] = None,
                 link: Optional[VirtualLink] = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.local_name = local_name
        self._sim = Simulator()
        self.driver = RealtimeDriver(self._sim, self.clock)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="udp-backend-loop", daemon=True)
        self._thread.start()
        self._fabric: Optional[UdpFabric] = None
        self._endpoints: list = []
        self._closed = False
        self.port: Optional[int] = None
        if local_name is not None:
            self._fabric = UdpFabric(self, peers=peers,
                                     rng=RngStreams(seed), link=link)
            transport, _ = self._call(self._loop.create_datagram_endpoint(
                lambda: _FabricProtocol(self), local_addr=bind))
            self._fabric._transport = transport
            self.port = transport.get_extra_info("sockname")[1]

    def _call(self, coro):
        """Run a coroutine on the loop thread, bounded by _CALL_TIMEOUT."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            _CALL_TIMEOUT)

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def network(self):
        return self._fabric

    def impair(self, spec):
        """Make this backend's sends hostile (see
        :class:`~repro.transport.impair.ImpairedFabric`).  Call before
        constructing a system over the backend; returns the wrapper."""
        from repro.transport.impair import ImpairedFabric

        if self._fabric is None:
            raise RuntimeError("no fabric to impair (no local_name bound)")
        self._fabric = ImpairedFabric(self._fabric, spec)
        return self._fabric

    def pair(self, **kwargs) -> Tuple[UdpEndpoint, UdpEndpoint]:
        a = UdpEndpoint(self)
        b = UdpEndpoint(self)
        addr_a = a._open()
        addr_b = b._open()
        a._peer_addr, b._peer_addr = addr_b, addr_a
        self._endpoints += [a, b]
        return a, b

    def run(self, until: Optional[float] = None, stop_when=None,
            poll: Optional[float] = None) -> None:
        """Drive this system's world in wall time until the timeline
        reaches ``until`` (seconds since backend construction) or
        ``stop_when()`` turns true."""
        duration = None if until is None else max(0.0, until - self.clock.now())
        self.driver.run(duration=duration, stop_when=stop_when, poll=poll)

    def close(self) -> None:
        """Idempotent shutdown: stop the driver, close every transport on
        the loop thread, stop and *always* release the loop.

        Safe to call twice (the second call is a no-op), safe while the
        driver is mid-``run`` (``stop`` ends it), and a wedged loop
        thread gets a second stop request before we give up — the loop
        object itself is closed whenever the thread has actually exited,
        never leaked behind an early return.
        """
        if self._closed:
            return
        self._closed = True
        self.driver.stop()

        def _shutdown() -> None:
            for ep in self._endpoints:
                if ep._transport is not None:
                    ep._transport.close()
            if self._fabric is not None and self._fabric._transport is not None:
                self._fabric._transport.close()
            self._loop.stop()

        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:
                pass  # the loop died under us; nothing left to run there
            self._thread.join(timeout=_CALL_TIMEOUT)
            if self._thread.is_alive():
                # a handler wedged the first shutdown; one more stop, one
                # more bounded join, then fall through to the close check
                try:
                    self._loop.call_soon_threadsafe(self._loop.stop)
                except RuntimeError:
                    pass
                self._thread.join(timeout=_CALL_TIMEOUT)
        if not self._loop.is_running() and not self._loop.is_closed():
            self._loop.close()
