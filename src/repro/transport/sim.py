"""The simulated substrate — the default, and required bit-identical.

:class:`SimBackend` wraps the existing ``repro.netsim`` world behind the
transport interface without changing a single event: ``adopt_network``
hands back the caller-built :class:`~repro.netsim.network.Network`
untouched, so the default construction path is *the same objects* as
before the substrate became pluggable.  With ``route_frames=True`` the
network is wrapped in a pure-Python counting proxy — every frame then
demonstrably crosses the backend interface, and because the proxy adds
no events and perturbs no RNG stream, delivery digests stay bit-identical
(the equivalence test in ``tests/transport/`` runs the churn digest both
ways and compares).

:meth:`SimBackend.pair` gives the conformance suite sim-domain endpoints:
a FIFO byte pipe modelled directly on the event kernel (serialization +
propagation per chunk), where ``recv`` *pumps the simulator* until data
arrives or virtual time reaches the deadline.  Timeouts here are virtual
seconds — the whole point of the :class:`~repro.sim.clock.Clock` split.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.kernel import Simulator
from repro.transport.base import (
    ECONNRESET,
    ETIMEDOUT,
    RecvResult,
    TransportBackend,
    _BufferedEndpoint,
)


class _CountingFabric:
    """A pure pass-through Network proxy that counts routed frames.

    ``send`` is the only intercepted method; everything else delegates,
    so hosts, the monitor, and MANTTS see the genuine Network.  No events
    are added and no RNG stream is touched — the simulation's event
    sequence is byte-for-byte the unproxied one.
    """

    __slots__ = ("_network", "_backend")

    def __init__(self, network, backend: "SimBackend") -> None:
        object.__setattr__(self, "_network", network)
        object.__setattr__(self, "_backend", backend)

    def send(self, frame) -> None:
        self._backend.frames_routed += 1
        self._network.send(frame)

    def __getattr__(self, name):
        return getattr(self._network, name)


class SimEndpoint(_BufferedEndpoint):
    """One side of a simulated FIFO byte pipe.

    Chunks depart back-to-back (a shared cursor models the serializer)
    and arrive ``delay`` later; EOF rides the same cursor so it can never
    overtake data, while a reset is immediate — RST semantics.
    """

    backend = "sim"

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 delay: float) -> None:
        super().__init__(sim.clock)
        self.sim = sim
        self._bw = bandwidth_bps
        self._delay = delay
        self._cursor = 0.0  # when our serializer next falls idle
        self._peer: Optional["SimEndpoint"] = None

    def send(self, data: bytes) -> int:
        if self._closed or self._reset:
            return ECONNRESET
        data = bytes(data)
        depart = max(self.sim.now, self._cursor) + len(data) * 8.0 / self._bw
        self._cursor = depart
        self.sim.schedule_at(depart + self._delay, self._peer._feed, data)
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        eof_at = max(self.sim.now, self._cursor) + self._delay
        self.sim.schedule_at(eof_at, self._peer._feed_eof)

    def abort(self) -> None:
        self._closed = True
        self.sim.schedule_at(self.sim.now, self._peer._feed_reset)

    def recv(self, max_len: int = 65536,
             timeout: Optional[float] = None) -> RecvResult:
        """Pump the simulator until data, EOF, reset, or the virtual
        deadline.  A drained event queue with nothing buffered is a
        timeout — virtual time cannot pass without events."""
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            if self._reset or self._closed:
                return RecvResult(ECONNRESET)
            if self._chunks:
                return RecvResult(*self._take(max_len))
            if self._eof:
                return RecvResult(0)
            nxt = self.sim.next_event_time()
            if nxt is None or (deadline is not None and nxt > deadline):
                if deadline is not None:
                    self.sim.run(until=deadline)
                return RecvResult(ETIMEDOUT)
            self.sim.run(until=nxt)


class SimBackend(TransportBackend):
    """The discrete-event substrate (default)."""

    name = "sim"

    def __init__(self, sim: Optional[Simulator] = None,
                 route_frames: bool = False) -> None:
        self._sim = sim if sim is not None else Simulator()
        self.clock = self._sim.clock
        self.route_frames = route_frames
        self._network = None
        #: frames that crossed the backend interface (route_frames mode)
        self.frames_routed = 0

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def network(self):
        return self._network

    def adopt_network(self, network):
        """Install a caller-built topology as this backend's fabric.

        Default mode returns ``network`` unchanged — the pre-refactor
        wiring, object for object.  ``route_frames=True`` interposes the
        counting proxy (still event-free, still bit-identical)."""
        if self.route_frames:
            network = _CountingFabric(network, self)
        self._network = network
        return network

    def pair(self, bandwidth_bps: float = 1e9, delay: float = 1e-3,
             **kwargs) -> Tuple[SimEndpoint, SimEndpoint]:
        a = SimEndpoint(self._sim, bandwidth_bps, delay)
        b = SimEndpoint(self._sim, bandwidth_bps, delay)
        a._peer, b._peer = b, a
        return a, b

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self._sim.run(until=until, max_events=max_events)
