"""Shared multiprocessing substrate for sweeps and shards.

Two execution shapes, one module:

* :func:`map_unordered` — the fire-and-forget pool used by
  :class:`~repro.sweep.runner.SweepRunner`: independent payloads fanned
  over ``multiprocessing.Pool``, results yielded in completion order,
  with :class:`OrderedStreamer` reassembling the contiguous index-order
  prefix for deterministic streaming.  Worker exceptions come back as a
  :class:`WorkerCrashError` naming the failing cell instead of a bare
  pickled traceback deep inside pool internals.
* :class:`WorkerTeam` — the long-lived conversational workers the shard
  coordinator (:mod:`repro.shard.coordinator`) holds a lockstep barrier
  over: one process + one duplex pipe per worker, *every* receive polls
  with a bounded timeout and checks the child is alive, so a worker that
  raises, is killed, or wedges surfaces a :class:`WorkerCrashError`
  naming the shard — the barrier can never hang forever.

Both shapes share the determinism conventions established by the sweep
engine: targets must be importable module-level callables (pickled by
reference), per-task seeds come from
:func:`~repro.sweep.spec.derive_cell_seed` (re-exported here), and
nothing about worker count or completion order may leak into results.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sweep.spec import derive_cell_seed

__all__ = [
    "WorkerCrashError",
    "OrderedStreamer",
    "map_unordered",
    "WorkerTeam",
    "derive_cell_seed",
]


class WorkerCrashError(RuntimeError):
    """A pool or team worker raised, died, or stopped responding.

    ``task_id`` names the failing unit of work — the sweep cell index or
    the ``"shard N"`` label — so a 4-shard run that loses worker 2 fails
    with *which* worker, not a generic pool traceback.
    """

    def __init__(self, task_id: Any, detail: str) -> None:
        super().__init__(f"worker for {task_id} failed: {detail}")
        self.task_id = task_id
        self.detail = detail


# ----------------------------------------------------------------------
# pool shape: independent payloads, completion-order results
# ----------------------------------------------------------------------
def _guarded(payload: Tuple[Callable[[Any], Any], Any, Any]) -> Tuple[Any, bool, Any, Optional[str]]:
    """Worker-side wrapper: never lets an exception escape unpickled."""
    fn, item, task_id = payload
    try:
        return task_id, True, fn(item), None
    except Exception:
        return task_id, False, None, traceback.format_exc()


def map_unordered(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    ids: Optional[Sequence[Any]] = None,
    ctx: Optional[multiprocessing.context.BaseContext] = None,
) -> Iterator[Tuple[Any, Any]]:
    """Run ``fn(item)`` for every item across ``workers`` processes.

    Yields ``(task_id, result)`` in completion order (``chunksize=1``, so
    scheduling cannot batch-bias which worker sees which payload).  A
    worker exception tears the pool down and raises
    :class:`WorkerCrashError` carrying the task id and the child-side
    traceback text.
    """
    items = list(items)
    task_ids = list(ids) if ids is not None else list(range(len(items)))
    if len(task_ids) != len(items):
        raise ValueError("ids must match items one-to-one")
    payloads = [(fn, item, tid) for item, tid in zip(items, task_ids)]
    ctx = ctx if ctx is not None else multiprocessing.get_context()
    with ctx.Pool(processes=workers) as pool:
        for tid, ok, value, err in pool.imap_unordered(
            _guarded, payloads, chunksize=1
        ):
            if not ok:
                raise WorkerCrashError(tid, err.strip())
            yield tid, value


class OrderedStreamer:
    """Reassemble indexed completion-order results into index order.

    Results may arrive in any order; :meth:`put` stores each one and
    reports the newly contiguous completed prefix ``[start, upto)`` so
    the caller can flush side effects (repository rows, span records) in
    exactly the order a serial run would have produced them.
    """

    def __init__(self, slots: List[Optional[Any]]) -> None:
        self.slots = slots
        self.streamed = 0

    def put(self, index: int, value: Any) -> Tuple[int, int]:
        self.slots[index] = value
        start = self.streamed
        while self.streamed < len(self.slots) and self.slots[self.streamed] is not None:
            self.streamed += 1
        return start, self.streamed


# ----------------------------------------------------------------------
# team shape: long-lived conversational workers behind a crash-safe pipe
# ----------------------------------------------------------------------
def _team_main(conn, worker_id: int, target, args: tuple) -> None:
    """Child entry: run ``target(conn, worker_id, *args)`` to completion.

    An escaping exception is reported over the pipe (best-effort) before
    the child exits, so the parent's next receive names the failure with
    its traceback instead of seeing only a dead process.
    """
    try:
        target(conn, worker_id, *args)
    except Exception:
        try:
            conn.send(("__crash__", worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class WorkerTeam:
    """``n`` long-lived processes, one duplex pipe each.

    Unlike a ``Pool`` barrier — which deadlocks forever if a worker is
    SIGKILLed mid-task — every :meth:`recv` here alternates short pipe
    polls with liveness checks on the child process, and gives up after
    ``timeout`` seconds, so the coordinator always gets a
    :class:`WorkerCrashError` naming the dead or wedged worker.

    ``target`` must be an importable module-level callable (pickled by
    reference) invoked in the child as ``target(conn, worker_id, *args)``
    where ``args`` comes from ``args_for(worker_id)``.
    """

    def __init__(
        self,
        target: Callable[..., None],
        n: int,
        args_for: Optional[Callable[[int], tuple]] = None,
        name: str = "worker",
        timeout: float = 120.0,
        heartbeat: float = 0.25,
        ctx: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        if n < 1:
            raise ValueError("team needs at least one worker")
        self.name = name
        self.timeout = float(timeout)
        self.heartbeat = float(heartbeat)
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        self._procs = []
        self._pipes = []
        for i in range(n):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            args = tuple(args_for(i)) if args_for is not None else ()
            proc = ctx.Process(
                target=_team_main,
                args=(child_conn, i, target, args),
                name=f"{name}-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)

    def __len__(self) -> int:
        return len(self._procs)

    def _tid(self, i: int) -> str:
        return f"{self.name} {i}"

    # ------------------------------------------------------------------
    def send(self, i: int, msg: Any) -> None:
        try:
            self._pipes[i].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(self._tid(i), f"pipe closed on send ({exc})")

    def recv(self, i: int, timeout: Optional[float] = None) -> Any:
        """Receive one message from worker ``i``, crash-safely.

        Raises :class:`WorkerCrashError` when the worker reported a
        traceback, its process died (buffered messages are still drained
        first), or nothing arrives within the timeout — the wedged-barrier
        guard.
        """
        limit = self.timeout if timeout is None else float(timeout)
        pipe, proc = self._pipes[i], self._procs[i]
        waited = 0.0
        while True:
            step = min(self.heartbeat, limit - waited)
            if step <= 0:
                raise WorkerCrashError(
                    self._tid(i),
                    f"no reply within {limit:.1f}s (wedged worker or barrier)",
                )
            if pipe.poll(step):
                try:
                    msg = pipe.recv()
                except (EOFError, OSError):
                    raise WorkerCrashError(
                        self._tid(i), "pipe closed mid-message (worker died)"
                    )
                if isinstance(msg, tuple) and msg and msg[0] == "__crash__":
                    raise WorkerCrashError(self._tid(i), str(msg[-1]))
                return msg
            waited += step
            if not proc.is_alive() and not pipe.poll(0):
                raise WorkerCrashError(
                    self._tid(i),
                    f"worker process died (exit code {proc.exitcode})",
                )

    def broadcast(self, msgs: Iterable[Any]) -> None:
        """Send one (distinct) message to each worker, in worker order."""
        for i, msg in enumerate(msgs):
            self.send(i, msg)

    def gather(self, timeout: Optional[float] = None) -> List[Any]:
        """One message from every worker, in worker order (the barrier)."""
        return [self.recv(i, timeout=timeout) for i in range(len(self))]

    # ------------------------------------------------------------------
    def close(self, farewell: Any = None, join_timeout: float = 5.0) -> None:
        """Shut the team down; stragglers are terminated, never waited on."""
        if farewell is not None:
            for i in range(len(self)):
                if self._procs[i].is_alive():
                    try:
                        self._pipes[i].send(farewell)
                    except (BrokenPipeError, OSError):
                        pass
        for proc in self._procs:
            proc.join(join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        for pipe in self._pipes:
            try:
                pipe.close()
            except Exception:
                pass

    def __enter__(self) -> "WorkerTeam":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
