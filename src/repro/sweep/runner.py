"""Parallel scenario-sweep execution.

``SweepRunner`` turns a :class:`~repro.sweep.spec.ScenarioSpec` into
results, either serially in-process or sharded across ``multiprocessing``
workers.  The determinism contract (see ``docs/performance.md``):

* every cell runs in its own fresh :class:`~repro.sim.Simulator`, seeded
  from the spec alone (:func:`~repro.sweep.spec.derive_cell_seed`);
* workers return ``(index, metrics)`` and the runner assembles results in
  cell-index order, so **a parallel run is bit-identical to a serial run**
  of the same spec — worker count, scheduling order, and chunking cannot
  leak into the results;
* repository streaming happens in cell-index order too (the completed
  prefix is flushed as results arrive), so the UNITES
  :class:`~repro.unites.repository.MetricRepository` ends up with an
  identical row sequence either way.

Cell functions must be importable module-level callables (pickled by
reference for the worker processes) and must not depend on global mutable
state — each worker imports the module fresh.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.sweep.pool import OrderedStreamer, map_unordered
from repro.sweep.spec import ScenarioSpec, SweepCell
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY
from repro.unites.repository import MetricRepository


def _execute_cell(payload: Tuple[Any, int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any], float]:
    """Worker entry point: run one cell, return (index, metrics, wall_s)."""
    fn, index, kwargs = payload
    w0 = perf_counter()
    metrics = dict(fn(**kwargs))
    return index, metrics, perf_counter() - w0


@dataclass(frozen=True)
class CellResult:
    """One completed grid point."""

    cell: SweepCell
    metrics: Dict[str, Any]
    #: wall-clock seconds the cell took *inside its worker* — diagnostic
    #: only, never part of the bit-identity contract
    wall_s: float

    @property
    def params(self) -> Dict[str, Any]:
        return self.cell.params


@dataclass
class SweepResult:
    """All cells of one campaign, in cell-index order."""

    spec_name: str
    cells: List[CellResult]
    workers: int
    wall_s: float = 0.0

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    def metrics_only(self) -> List[Dict[str, Any]]:
        """Just the per-cell metric dicts (the bit-identity payload)."""
        return [c.metrics for c in self.cells]

    def values(self, metric: str) -> List[Any]:
        """One metric across all cells, in grid order."""
        return [c.metrics.get(metric) for c in self.cells]

    def find(self, **params: Any) -> Optional[CellResult]:
        """The first cell whose parameters include all of ``params``."""
        for c in self.cells:
            if all(c.cell.params.get(k) == v for k, v in params.items()):
                return c
        return None

    def rows(self) -> List[Dict[str, Any]]:
        """Flat ``{**params, **metrics}`` dicts, ready for a table."""
        return [{**c.cell.params, **c.metrics} for c in self.cells]


@dataclass
class SweepRunner:
    """Executes a :class:`ScenarioSpec`, serially or across processes.

    Parameters
    ----------
    spec:
        The grid to run.
    workers:
        Process count.  ``1`` runs serially in-process (no pool at all);
        ``None`` uses ``os.cpu_count()`` capped by the cell count.
    repository:
        Optional UNITES repository; every cell's numeric metrics are
        recorded under the ``"sweep"`` scope with the cell's label as
        entity and its grid index as the sample time, streamed in index
        order as results arrive.
    """

    spec: ScenarioSpec
    workers: Optional[int] = 1
    repository: Optional[MetricRepository] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def _resolved_workers(self, n_cells: int) -> int:
        w = self.workers
        if w is None:
            w = os.cpu_count() or 1
        return max(1, min(w, n_cells))

    def run(self) -> SweepResult:
        """Run the whole grid; results arrive in cell-index order."""
        spec = self.spec
        cells = spec.cells()
        workers = self._resolved_workers(len(cells))
        t0 = perf_counter()
        if _TELEMETRY.enabled:
            _TELEMETRY.instant(
                f"sweep:{spec.name}:start", "sweep",
                cells=len(cells), workers=workers,
            )
        slots: List[Optional[Tuple[Dict[str, Any], float]]] = [None] * len(cells)
        if workers <= 1:
            for cell in cells:
                index, metrics, wall = _execute_cell(self._payload(cell))
                slots[index] = (metrics, wall)
                self._stream(cells, slots, upto=index + 1, start=index)
        else:
            self._run_pool(cells, slots, workers)
        results = [
            CellResult(cell=cell, metrics=slots[cell.index][0],
                       wall_s=slots[cell.index][1])
            for cell in cells
        ]
        out = SweepResult(
            spec_name=spec.name,
            cells=results,
            workers=workers,
            wall_s=perf_counter() - t0,
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.complete(
                f"sweep:{spec.name}", "sweep", 0.0, 0.0,
                wall_us=out.wall_s * 1e6, cells=len(cells), workers=workers,
            )
        return out

    # ------------------------------------------------------------------
    def _payload(self, cell: SweepCell) -> Tuple[Any, int, Dict[str, Any]]:
        kwargs = dict(self.spec.fixed)
        kwargs.update(cell.params)
        if self.spec.seed_param is not None:
            kwargs[self.spec.seed_param] = cell.seed
        return (self.spec.cell, cell.index, kwargs)

    def _run_pool(
        self,
        cells: List[SweepCell],
        slots: List[Optional[Tuple[Dict[str, Any], float]]],
        workers: int,
    ) -> None:
        """Shard cells across the shared pool substrate; stream the prefix.

        The contiguous completed prefix is flushed in index order so
        repository rows are identical to a serial run; a crashed cell
        surfaces as :class:`repro.sweep.pool.WorkerCrashError` with its
        cell index.
        """
        streamer = OrderedStreamer(slots)
        for _tid, (index, metrics, wall) in map_unordered(
            _execute_cell,
            [self._payload(c) for c in cells],
            workers,
            ids=[c.index for c in cells],
        ):
            start, upto = streamer.put(index, (metrics, wall))
            if upto > start:
                self._stream(cells, slots, upto=upto, start=start)

    def _stream(
        self,
        cells: List[SweepCell],
        slots: List[Optional[Tuple[Dict[str, Any], float]]],
        upto: int,
        start: int,
    ) -> None:
        """Record cells ``[start, upto)`` into the repository / span bus."""
        repo = self.repository
        tele_on = _TELEMETRY.enabled
        if repo is None and not tele_on:
            return
        for cell in cells[start:upto]:
            metrics, wall = slots[cell.index]
            if repo is not None:
                numeric = {
                    k: float(v)
                    for k, v in metrics.items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
                repo.record_many(
                    float(cell.index), "sweep",
                    f"{self.spec.name}[{cell.label}]", numeric,
                )
            if tele_on:
                _TELEMETRY.complete(
                    f"sweep:{self.spec.name}:{cell.label}", "sweep",
                    0.0, 0.0, wall_us=wall * 1e6, index=cell.index,
                    seed=cell.seed,
                )


def run_sweep(
    spec: ScenarioSpec,
    workers: Optional[int] = 1,
    repository: Optional[MetricRepository] = None,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(spec, workers=workers, repository=repository).run()
