"""Scenario-sweep campaigns.

The paper's UNITES story (§4.3) is *controlled, empirical experimentation*;
this package scales it from "run one experiment" to "run an experiment
campaign": a declarative :class:`ScenarioSpec` names a cell function and a
parameter grid, and :class:`SweepRunner` executes the grid serially or
sharded across ``multiprocessing`` workers — with per-cell seeds derived
deterministically from the spec so a parallel run is bit-identical to a
serial one.  Results stream into the UNITES
:class:`~repro.unites.repository.MetricRepository` under the ``"sweep"``
scope.  See ``docs/performance.md`` for the determinism contract.
"""

from repro.sweep.runner import CellResult, SweepResult, SweepRunner, run_sweep
from repro.sweep.spec import ScenarioSpec, SweepCell, derive_cell_seed

__all__ = [
    "CellResult",
    "ScenarioSpec",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "derive_cell_seed",
    "run_sweep",
]
