"""Declarative scenario grids.

A :class:`ScenarioSpec` names a cell function and a parameter grid; the
grid's Cartesian product (in declaration order, row-major) is the ordered
list of :class:`SweepCell`\\ s a :class:`~repro.sweep.runner.SweepRunner`
executes.  Everything about a cell — its index, its parameters, its seed —
is derived deterministically from the spec alone, which is what makes a
parallel run bit-identical to a serial one: workers receive fully
self-describing cells and the runner reassembles results by cell index.

Per-cell seeds follow the :mod:`repro.sim.rng` idiom — a CRC-32 of the
canonical parameter string mixed with the spec's ``base_seed`` — so adding
a parameter value to the grid never perturbs the seeds of existing cells
(seeds depend on parameter *values*, not grid position).
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: a cell function: ``fn(**params) -> dict`` of metric values
CellFn = Callable[..., Mapping[str, Any]]


def derive_cell_seed(base_seed: int, name: str, params: Mapping[str, Any]) -> int:
    """Deterministic 31-bit seed for one cell.

    Canonicalises the parameters (sorted by key, ``repr`` values) so the
    seed is a pure function of *what the cell is*, independent of grid
    shape, execution order, or worker placement.
    """
    canon = name + "|" + "|".join(
        f"{k}={params[k]!r}" for k in sorted(params)
    )
    return (base_seed * 2654435761 + zlib.crc32(canon.encode())) % (2**31 - 1)


@dataclass(frozen=True)
class SweepCell:
    """One grid point: index in the spec's ordering, parameters, seed."""

    index: int
    params: Dict[str, Any]
    seed: int

    @property
    def label(self) -> str:
        """Stable human-readable id, e.g. ``window=16,loss=0.01``."""
        return ",".join(f"{k}={v}" for k, v in self.params.items())


@dataclass
class ScenarioSpec:
    """A named scenario grid.

    Parameters
    ----------
    name:
        Campaign name (keys repository rows and telemetry spans).
    cell:
        The cell function, called as ``cell(**fixed, **grid_point)`` —
        plus ``seed_param=<derived seed>`` when ``seed_param`` is set.
        Must be an importable module-level callable so worker processes
        can unpickle it by reference.
    grid:
        Ordered mapping of parameter name → list of values.  Cells are
        the Cartesian product in declaration order (last axis fastest).
    fixed:
        Extra keyword arguments passed unchanged to every cell.
    seed_param:
        Name of the cell kwarg that receives the derived per-cell seed,
        or ``None`` when the cell function manages its own seeding (the
        migrated grand tour keeps its historical hard-coded seed this
        way, so its results stay bit-identical to the pre-sweep runs).
    base_seed:
        Root seed mixed into every derived cell seed.
    """

    name: str
    cell: CellFn
    grid: Dict[str, Sequence[Any]]
    fixed: Dict[str, Any] = field(default_factory=dict)
    seed_param: Optional[str] = "seed"
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("grid must have at least one axis")
        for axis, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(f"grid axis {axis!r} is empty")

    # ------------------------------------------------------------------
    @property
    def axes(self) -> Tuple[str, ...]:
        return tuple(self.grid)

    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def cells(self) -> List[SweepCell]:
        """The ordered grid points (row-major over declaration order)."""
        out: List[SweepCell] = []
        for index, combo in enumerate(itertools.product(*self.grid.values())):
            params = dict(zip(self.axes, combo))
            out.append(SweepCell(
                index=index,
                params=params,
                seed=derive_cell_seed(self.base_seed, self.name, params),
            ))
        return out
