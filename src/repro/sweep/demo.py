"""Demo sweep cells — adaptive vs static across channel quality.

The cell functions live here (not in ``examples/sweep_demo.py``) because
sweep cells must be importable module-level callables: worker processes
unpickle them by reference, and a function defined in a script run as
``__main__`` has no stable import path.

The grid is a miniature of benchmark E9's architecture-level claim: a CBR
media session over a 10 Mb/s segment swept across bit-error rates, once
with a MANTTS loss-triggered adaptation policy active and once for each
static configuration.  Plain GBN is lean on the clean channel but drowns
in retransmissions as the BER climbs; always-on FEC repairs the lossy
channel but pays its parity overhead everywhere; the adaptive session
starts lean and switches to FEC only when the monitored channel BER
crosses its threshold.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.scenario import PointToPointScenario
from repro.mantts.acd import ACD
from repro.mantts.policies import TSARule
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10
from repro.tko.config import SessionConfig

FRAME = 512
FPS = 24

#: static configurations, each tuned for one end of the BER range
STATIC_VARIANTS = {
    "static-gbn": dict(recovery="gbn", ack="cumulative",
                       transmission="window-rate", rate_pps=float(FPS)),
    "static-fec": dict(connection="implicit", recovery="fec-rs", ack="none",
                       transmission="rate", rate_pps=float(FPS),
                       fec_k=4, fec_r=2, sequencing="none"),
}

VARIANTS = ("adaptive",) + tuple(STATIC_VARIANTS)


def ber_switch_to_fec(threshold: float = 2e-6) -> TSARule:
    """Retransmission → FEC once the monitored channel BER crosses the bar."""
    return TSARule(
        metric="ber",
        op=">",
        threshold=threshold,
        action="adjust-scs",
        overrides=(
            ("recovery", "fec-rs"),
            ("ack", "none"),
            ("transmission", "rate"),
            ("rate_pps", float(FPS)),
            ("fec_k", 4),
            ("fec_r", 2),
        ),
        tag="ber->fec",
    )


def adaptive_vs_static_cell(variant: str, ber: float, seed: int = 11,
                            duration: float = 8.0) -> Dict[str, Any]:
    """One grid point: run ``variant`` over a channel with bit-error ``ber``."""
    common = dict(
        workload="video-cbr",
        workload_kw={"fps": FPS, "frame_bytes": FRAME},
        duration=duration,
        seed=seed,
        profile=ethernet_10().scaled(ber=ber),
    )
    if variant == "adaptive":
        sc = PointToPointScenario(
            acd=ACD(
                participants=("B",),
                quantitative=QuantitativeQoS(
                    avg_throughput_bps=FRAME * 8 * FPS, duration=600,
                    loss_tolerance=0.02, message_size=FRAME,
                ),
                qualitative=QualitativeQoS(ordered=False,
                                           duplicate_sensitive=False),
                service_port=7000,
                tsa=(ber_switch_to_fec(threshold=2e-6),),
            ),
            **common,
        )
    else:
        sc = PointToPointScenario(
            config=SessionConfig(**STATIC_VARIANTS[variant]), **common
        )
    sc.run(duration)
    m = sc.collect()
    return {
        "delivered_frac": (m["msgs_delivered"] / m["msgs_sent"]
                           if m["msgs_sent"] else 0.0),
        "mean_latency": m["mean_latency"],
        "wire_bytes": m.get("wire_bytes", 0.0),
        "reconfigs": m.get("reconfigurations", 0.0),
    }
