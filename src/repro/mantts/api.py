"""The MANTTS entity and the application-facing MANTTS-API (§4.1).

One ``MANTTS`` instance runs on every ADAPTIVE host.  It owns the host's
TKO protocol object, listens on the well-known signalling port, and serves
two roles:

* **initiator** — :meth:`MANTTS.open` takes an ACD (Table 2) through the
  three-stage transformation of Figure 2, negotiates (implicitly or over
  the out-of-band channel) and returns an :class:`AdaptiveConnection`;
* **responder** — :meth:`MANTTS.register_service` binds an application
  port; arriving negotiation requests run admission control, arriving
  data sessions are synthesized from the negotiated (or piggybacked)
  configuration.

An ``AdaptiveConnection`` is the application handle: ``send`` / ``close``
plus the adaptive machinery — a network monitor feeding a policy engine
whose TSA rules reconfigure the live session (and its remote peers) when
conditions cross thresholds (§4.1.2).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.host.connmgr import ConnectionManager
from repro.host.nic import Host
from repro.mantts.acd import ACD
from repro.mantts.lifecycle import NEGOTIATION_TIMEOUT, ConnectionLifecycle
from repro.mantts.monitor import NetworkMonitor, NetworkState
from repro.mantts.negotiation import (
    MANTTS_PORT,
    SIGNALLING_CONFIG,
    decode,
    encode,
    respond_to_open,
)
from repro.mantts.policies import PolicyEngine
from repro.mantts.resources import ResourceManager
from repro.mantts.scs import SCS
from repro.mantts.transform import specify_scs
from repro.mantts.tsc import TSC
from repro.tko.config import SessionConfig
from repro.tko.protocol import TKOProtocol
from repro.tko.session import TKOSession
from repro.tko.synthesizer import TKOSynthesizer

__all__ = ["MANTTS", "AdaptiveConnection", "NEGOTIATION_TIMEOUT"]

#: a responder holds an accepted-but-unclaimed reservation at most this
#: long before the guard rolls it back (covers initiators that vanish
#: without sending ``open-abort``)
RESERVATION_GUARD = 2 * NEGOTIATION_TIMEOUT


class MANTTS:
    """The per-host MANTTS entity."""

    def __init__(
        self,
        host: Host,
        protocol: Optional[TKOProtocol] = None,
        synthesizer: Optional[TKOSynthesizer] = None,
        resources: Optional[ResourceManager] = None,
        monitor_interval: float = 0.1,
        manager: Optional[ConnectionManager] = None,
        manager_mode: str = "coalesced",
    ) -> None:
        self.host = host
        self.protocol = protocol if protocol is not None else TKOProtocol(
            host, synthesizer or TKOSynthesizer()
        )
        self.synthesizer = self.protocol.synthesizer
        self.resources = resources if resources is not None else ResourceManager(
            host, admission_bps=1e9
        )
        self.monitor_interval = monitor_interval
        #: negotiation patience in this entity's clock domain — virtual
        #: seconds in simulation, wall seconds on a real substrate.  The
        #: reservation guard tracks it at 2x.  Default preserves every
        #: simulated timeline bit-for-bit.
        self.negotiation_timeout = NEGOTIATION_TIMEOUT
        #: extra negotiation attempts after a timeout (0 = the classic
        #: single-shot open, preserving simulated timelines).  Real lossy
        #: substrates set this >0 so a lost open-request/accept exchange
        #: retries with exponential backoff instead of failing setup.
        self.negotiation_retries = 0
        #: base backoff before retry k is ``backoff * 2**(k-1)`` seconds
        self.negotiation_backoff = 0.5
        #: uniform jitter fraction on top of each backoff (decorrelates
        #: two peers that timed out on the same lost exchange)
        self.negotiation_jitter = 0.25
        #: the per-host connection-scale layer: connection table, shared
        #: probe/SCS caches, coalesced timer groups, population gauges
        self.manager = manager if manager is not None else ConnectionManager(
            host, mode=manager_mode
        )
        self.manager.bind(self)
        #: optional UNITES facade; when set, TMC requests are honoured
        self.unites = None
        #: connection refs are per-entity, so one host's churn never
        #: changes another run's (or host's) ref strings — refs travel in
        #: signalling messages and must be reproducible in isolation
        self._ref_counter = itertools.count(1)

        self._sig_sessions: Dict[str, TKOSession] = {}
        self._pending: Dict[str, Callable[[dict], None]] = {}
        self._probe_waiters: Dict[str, list] = {}
        self._services: Dict[int, dict] = {}
        #: (peer_host, service_port) -> negotiated config awaiting arrival
        self._negotiated: Dict[Tuple[str, int], SessionConfig] = {}
        #: (peer_host, service_port) -> most recent accepted reservation ref
        #: (introspection view; the FIFO below is the accounting truth)
        self._reservation_refs: Dict[Tuple[str, int], str] = {}
        #: (peer_host, service_port) -> accepted refs no data session has
        #: claimed yet, oldest first
        self._unclaimed: Dict[Tuple[str, int], List[str]] = {}
        #: (remote_host, remote_port, local_port) -> the reservation a live
        #: responder session claimed (released when that session closes)
        self._session_res: Dict[Tuple[str, int, int], str] = {}
        #: ref -> backstop timer rolling an unclaimed reservation back
        self._res_guards: Dict[str, object] = {}
        #: (remote_host, remote_port, local_port) -> live responder session
        self._peer_sessions: Dict[Tuple[str, int, int], TKOSession] = {}
        self.connections: Dict[str, "AdaptiveConnection"] = {}

        self.protocol.listen(MANTTS_PORT, self._sig_cfg_factory, self._on_sig_session)

    # ------------------------------------------------------------------
    # signalling channel plumbing
    # ------------------------------------------------------------------
    def _sig_cfg_factory(self, pdu, frame) -> SessionConfig:
        return SIGNALLING_CONFIG

    def _on_sig_session(self, session: TKOSession) -> None:
        session.on_deliver = lambda data, meta: self._handle_signalling(data, session)
        peer = session.remote_host
        session.on_signalling = lambda pdu: self._on_probe_reply(pdu, peer)

    def _sig_session(self, peer: str) -> TKOSession:
        sess = self._sig_sessions.get(peer)
        if sess is None or sess.closed:
            sess = self.protocol.create_session(
                SIGNALLING_CONFIG,
                peer,
                MANTTS_PORT,
                on_deliver=lambda data, meta: self._handle_signalling(data, None),
            )
            sess.on_signalling = lambda pdu, p=peer: self._on_probe_reply(pdu, p)
            sess.connect()
            self._sig_sessions[peer] = sess
        return sess

    # ------------------------------------------------------------------
    # active round-trip measurement (§3(D): RTT "used at run-time to
    # determine when to reconfigure")
    # ------------------------------------------------------------------
    def measure_rtt(self, peer: str, callback: Callable[[float], None]) -> None:
        """Send a PROBE over the control channel; callback gets the RTT.

        Unlike the network monitor's model-derived estimate, this is an
        end-to-end measurement through real queues and host processing.
        """
        from repro.tko.pdu import PduType

        sess = self._sig_session(peer)
        probe = sess.make_pdu(PduType.PROBE)
        probe.timestamp = self.host.sim.now
        self._probe_waiters.setdefault(peer, []).append(callback)
        sess.emit_control(probe)

    def _on_probe_reply(self, pdu, peer: str) -> None:
        from repro.tko.pdu import PduType

        if pdu.ptype is not PduType.PROBE_REPLY:
            return
        rtt = self.host.sim.now - pdu.timestamp
        waiters = self._probe_waiters.get(peer, [])
        if waiters:
            waiters.pop(0)(rtt)

    def _send_signalling(self, peer: str, msg: dict) -> None:
        self._sig_session(peer).send(encode(msg))

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def register_service(
        self,
        port: int,
        on_session: Optional[Callable[[TKOSession], None]] = None,
        on_deliver: Optional[Callable[[bytes, dict], None]] = None,
        default_config: Optional[SessionConfig] = None,
    ) -> None:
        """Bind an application service to ``port`` (passive open)."""
        if port == MANTTS_PORT:
            raise ValueError(f"port {MANTTS_PORT} is reserved for MANTTS signalling")
        self._services[port] = {
            "on_session": on_session,
            "on_deliver": on_deliver,
            "default_config": default_config,
        }
        self.protocol.listen(
            port,
            lambda pdu, frame: self._service_config(port, pdu, frame),
            lambda session: self._service_session(port, session),
        )

    def _service_config(self, port: int, pdu, frame) -> SessionConfig:
        """Responder Stage II: negotiated > piggybacked > service default."""
        negotiated = self._negotiated.get((frame.src, port))
        if negotiated is not None:
            return self._receiver_view(negotiated)
        carried = pdu.options.get("cfg")
        if isinstance(carried, dict):
            try:
                return self._receiver_view(SessionConfig.from_dict(carried))
            except (ValueError, TypeError):
                pass
        default = self._services[port]["default_config"]
        return default if default is not None else SessionConfig(connection="implicit")

    @staticmethod
    def _receiver_view(cfg: SessionConfig) -> SessionConfig:
        """The responder's session is always a unicast endpoint (a multicast
        sender's receivers each hold a unicast session back to it)."""
        if cfg.delivery == "multicast":
            return cfg.with_(delivery="unicast", connection="implicit")
        return cfg

    def _service_session(self, port: int, session: TKOSession) -> None:
        service = self._services[port]
        key = (session.remote_host, session.remote_port, session.local_port)
        self._peer_sessions[key] = session
        # The arriving data session claims the oldest reservation its
        # negotiation took (FIFO per (peer, port): concurrent opens from
        # one peer each claim their own ledger entry), and §4.1.3's
        # termination phase releases exactly that entry on close.
        res_key = (session.remote_host, port)
        queue = self._unclaimed.get(res_key)
        if queue:
            ref = queue.pop(0)
            if not queue:
                del self._unclaimed[res_key]
            self._cancel_res_guard(ref)
            self._session_res[key] = ref
        original_on_closed = session.on_closed

        def release_then(original=original_on_closed):
            ref = self._session_res.pop(key, None)
            if ref is not None:
                self.resources.release(ref)
            if self._reservation_refs.get(res_key) == ref:
                self._reservation_refs.pop(res_key, None)
            self._peer_sessions.pop(key, None)
            if original is not None:
                original()

        session.on_closed = release_then
        if service["on_deliver"] is not None:
            session.on_deliver = service["on_deliver"]
        if service["on_session"] is not None:
            service["on_session"](session)

    # ------------------------------------------------------------------
    # signalling message handling
    # ------------------------------------------------------------------
    def _handle_signalling(self, data: bytes, session: Optional[TKOSession]) -> None:
        try:
            msg = decode(data)
        except ValueError:
            return
        mtype = msg.get("type")
        if mtype == "open-request":
            self._on_open_request(msg)
        elif mtype == "open-abort":
            self._on_open_abort(msg)
        elif mtype in ("open-accept", "open-refuse"):
            handler = self._pending.pop(msg.get("ref", ""), None)
            if handler is not None:
                handler(msg)
        elif mtype == "reconfig":
            self._on_reconfig(msg)
        elif mtype == "member-update":
            self._on_member_update(msg)

    def _on_open_request(self, msg: dict) -> None:
        ref = msg["ref"]
        initiator = msg["from"]
        port = msg["service_port"]
        if port not in self._services:
            self._send_signalling(
                initiator,
                {"type": "open-refuse", "ref": ref, "reason": f"no service on {port}"},
            )
            return
        # Mid-stream renegotiation replaces the session's existing
        # reservation rather than stacking a second one: release it before
        # admission, and reinstate it untouched if the new QoS is refused.
        prior_ref = prior_res = None
        session_key = None
        if msg.get("reneg"):
            data_port = msg.get("data_port")
            if data_port is not None:
                session_key = (initiator, data_port, port)
                prior_ref = self._session_res.pop(session_key, None)
            if prior_ref is None:  # legacy initiator: fall back to the view
                prior_ref = self._reservation_refs.pop((initiator, port), None)
            if prior_ref is not None:
                prior_res = self.resources.reservation(prior_ref)
                self.resources.release(prior_ref)
        verdict, final, payload = respond_to_open(msg, self.resources, conn_ref=ref)
        self.manager.note_admission(verdict)
        if verdict != "accept" and prior_res is not None:
            self.resources.admit(
                prior_ref, prior_res.throughput_bps, prior_res.buffer_bytes,
                tsc=prior_res.tsc,
            )
            self._reservation_refs[(initiator, port)] = prior_ref
            if session_key is not None:
                self._session_res[session_key] = prior_ref
        if verdict == "accept":
            assert final is not None
            self._negotiated[(initiator, port)] = final
            self._reservation_refs[(initiator, port)] = ref
            if msg.get("reneg"):
                if session_key is not None:
                    self._session_res[session_key] = ref
            else:
                self._enqueue_unclaimed(initiator, port, ref)
            if msg.get("group"):
                # multicast: join the delivery tree before data flows
                self.host.network.join_group(msg["group"], self.host.name)
            self._send_signalling(
                initiator, {"type": "open-accept", "ref": ref, "from": self.host.name, **payload}
            )
        else:
            self._send_signalling(
                initiator, {"type": "open-refuse", "ref": ref, "from": self.host.name, **payload}
            )

    # -- reservation bookkeeping (satellite of §4.1.3's termination) ----
    def _enqueue_unclaimed(self, initiator: str, port: int, ref: str) -> None:
        """Queue an accepted reservation until its data session claims it.

        A renegotiate-down retry supersedes the same connection's earlier
        attempt: any unclaimed ref with the same connection prefix is
        rolled back here, so a refuse→retry→accept sequence leaves exactly
        one ledger entry.  A backstop guard releases the reservation if no
        session (and no ``open-abort``) ever arrives.
        """
        key = (initiator, port)
        conn_prefix = ref.rsplit(":", 2)[0]
        queue = self._unclaimed.setdefault(key, [])
        for stale in [r for r in queue if r.rsplit(":", 2)[0] == conn_prefix]:
            queue.remove(stale)
            self._cancel_res_guard(stale)
            self.resources.release(stale)
        queue.append(ref)
        self._res_guards[ref] = self.manager.defer(
            2 * self.negotiation_timeout, lambda: self._res_guard_fired(key, ref)
        )

    def _cancel_res_guard(self, ref: str) -> None:
        guard = self._res_guards.pop(ref, None)
        if guard is not None:
            guard.cancel()

    def _res_guard_fired(self, key: Tuple[str, int], ref: str) -> None:
        self._res_guards.pop(ref, None)
        self._release_unclaimed(key, ref)

    def _release_unclaimed(self, key: Tuple[str, int], ref: str) -> None:
        queue = self._unclaimed.get(key)
        if not queue or ref not in queue:
            return
        queue.remove(ref)
        if not queue:
            del self._unclaimed[key]
        self.resources.release(ref)
        if self._reservation_refs.get(key) == ref:
            self._reservation_refs.pop(key, None)

    def _on_open_abort(self, msg: dict) -> None:
        """The initiator's open failed after we admitted it: roll back."""
        ref = msg.get("ref", "")
        key = (msg.get("from"), msg.get("service_port"))
        self._cancel_res_guard(ref)
        self._release_unclaimed(key, ref)

    def _on_reconfig(self, msg: dict) -> None:
        key = (msg["from"], msg["data_port"], msg["service_port"])
        session = self._peer_sessions.get(key)
        if session is None or session.closed:
            return
        try:
            cfg = self._receiver_view(SessionConfig.from_dict(msg["config"]))
        except (ValueError, TypeError):
            return
        self.synthesizer.reconfigure(session, cfg)
        self._negotiated[(msg["from"], msg["service_port"])] = cfg

    def _on_member_update(self, msg: dict) -> None:
        group = msg["group"]
        if msg["op"] == "join":
            self.host.network.join_group(group, self.host.name)
        else:
            self.host.network.leave_group(group, self.host.name)

    # ------------------------------------------------------------------
    # initiator side: the MANTTS-API
    # ------------------------------------------------------------------
    def open(
        self,
        acd: ACD,
        on_deliver: Optional[Callable[[bytes, dict], None]] = None,
        on_connected: Optional[Callable[["AdaptiveConnection"], None]] = None,
        on_closed: Optional[Callable[[], None]] = None,
        on_notify: Optional[Callable[[str, NetworkState], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
        binding: str = "dynamic",
        default_policies: bool = False,
        renegotiate: bool = False,
        adaptation=False,
        on_degraded=None,
        on_restored=None,
    ) -> "AdaptiveConnection":
        """Initiate an adaptive connection described by ``acd``.

        Returns the handle immediately; establishment is asynchronous
        (``on_connected`` / ``on_failed`` report the outcome).

        With ``default_policies=True`` and an ACD that carries no TSA
        rules of its own, MANTTS installs the policy bundle the selected
        TSC "embodies" (congestion-driven recovery switching and rate
        clamping, RTT-driven FEC for media) — see
        :func:`repro.mantts.policies.default_policies_for`.

        ``adaptation=True`` (or a dict of
        :class:`~repro.mantts.adaptation.AdaptationController` keyword
        overrides) attaches the run-time adaptation controller: failover
        re-derivation, the escalation ladder, graceful degradation with
        ``on_degraded`` / ``on_restored`` callbacks, and bounded-retry
        teardown when the destination stays unreachable.
        """
        conn = AdaptiveConnection(
            self,
            acd,
            on_deliver=on_deliver,
            on_connected=on_connected,
            on_closed=on_closed,
            on_notify=on_notify,
            on_failed=on_failed,
            binding=binding,
            default_policies=default_policies,
            renegotiate=renegotiate,
        )
        self.connections[conn.ref] = conn
        self.manager.connection_opening(conn)
        conn.begin()
        if adaptation and not conn._failed:
            from repro.mantts.adaptation import AdaptationController

            opts = dict(adaptation) if isinstance(adaptation, dict) else {}
            conn.adaptation = AdaptationController(
                conn, on_degraded=on_degraded, on_restored=on_restored, **opts
            )
        return conn


class AdaptiveConnection:
    """Application handle for one adaptive transport association."""

    def __init__(
        self,
        mantts: MANTTS,
        acd: ACD,
        on_deliver=None,
        on_connected=None,
        on_closed=None,
        on_notify=None,
        on_failed=None,
        binding: str = "dynamic",
        default_policies: bool = False,
        renegotiate: bool = False,
    ) -> None:
        self.mantts = mantts
        self.acd = acd
        self.host = mantts.host
        self.ref = f"{self.host.name}-{next(mantts._ref_counter)}"
        self.on_deliver = on_deliver
        self.on_connected = on_connected
        self.on_closed = on_closed
        self.on_notify = on_notify
        self.on_failed = on_failed
        self.binding = binding
        self.default_policies = default_policies
        #: §4.1.1: on refusal, "allow the application to re-negotiate at a
        #: lower quality of service" — one retry at the responder's offer
        self.renegotiate = renegotiate

        self.tsc: Optional[TSC] = None
        self.scs: Optional[SCS] = None
        self.session: Optional[TKOSession] = None
        self.monitor: Optional[NetworkMonitor] = None
        #: run-time adaptation controller (attached by ``MANTTS.open``)
        self.adaptation = None
        self.policies = PolicyEngine(self)
        self.group: Optional[str] = None
        self.members: List[str] = []
        self.reconfig_log: List[Tuple[float, str]] = []
        self._replies: Dict[str, dict] = {}
        #: establishment-phase state machine (Figure 2/3); terminal flags
        #: and in-flight buffering live there
        self.lifecycle = ConnectionLifecycle(self)

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.host.sim

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def cfg(self) -> SessionConfig:
        if self.session is not None:
            return self.session.cfg
        assert self.scs is not None
        return self.scs.config

    # lifecycle-state views (kept under the historical private names;
    # tests and tools introspect these on the handle)
    @property
    def _renegotiated(self) -> bool:
        return self.lifecycle.renegotiated

    @property
    def _established(self) -> bool:
        return self.lifecycle.established

    @property
    def _failed(self) -> bool:
        return self.lifecycle.failed

    @property
    def _pending_sends(self) -> List[bytes]:
        return self.lifecycle.pending_sends

    # ------------------------------------------------------------------
    # establishment (delegated to the lifecycle state machine)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        self.lifecycle.begin()

    # ------------------------------------------------------------------
    # data path passthrough
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> int:
        """Queue an application message.

        During explicit negotiation the session does not exist yet; data
        accepted in that window is buffered and released in order once
        Stage III instantiates the session (failed negotiation discards it
        with the failure callback).  Returns 0 for buffered messages.
        """
        if self._failed:
            raise RuntimeError("connection failed to establish")
        if self.session is None:
            self._pending_sends.append(bytes(data))
            return 0
        return self.session.send(data)

    def close(self) -> None:
        if self.monitor is not None:
            self.monitor.stop()
        for member in self.members if self.group else []:
            self.mantts._send_signalling(
                member, {"type": "member-update", "group": self.group, "op": "leave"}
            )
        if self.session is not None:
            self.session.close()

    # ------------------------------------------------------------------
    # adaptation (the §4.1.2 reconfiguration actions)
    # ------------------------------------------------------------------
    def apply_overrides(self, overrides: dict, reason: str = "") -> bool:
        """Adjust-the-SCS: retune or segue the live session, both ends."""
        if self.session is None or self.session.closed:
            return False
        if all(getattr(self.cfg, k, None) == v for k, v in overrides.items()):
            return False  # no-op: the requested state is already in effect
        try:
            new_cfg = self.cfg.with_(**overrides)
        except (ValueError, TypeError) as exc:
            self.reconfig_log.append((self.now, f"rejected ({exc})"))
            return False
        self.mantts.synthesizer.reconfigure(self.session, new_cfg)
        self.reconfig_log.append((self.now, reason or str(sorted(overrides))))
        self._signal_reconfig(new_cfg)
        return True

    def change_tsc(self, tsc_name: str, state: NetworkState) -> bool:
        """Adjust-the-TSC: rederive the whole SCS under a new service class."""
        try:
            tsc = TSC(tsc_name)
        except ValueError:
            return False
        new_scs = specify_scs(self.acd, state, tsc=tsc, binding=self.binding)
        self.tsc = tsc
        self.scs = new_scs
        if self.session is None:
            return False
        self.mantts.synthesizer.reconfigure(self.session, new_scs.config)
        self.reconfig_log.append((self.now, f"tsc->{tsc_name}"))
        self._signal_reconfig(new_scs.config)
        return True

    def notify_app(self, tag: str, state: NetworkState) -> None:
        """Application-specific action: the §4.1.2 call-back."""
        if self.on_notify is not None:
            self.on_notify(tag, state)

    def _signal_reconfig(self, cfg: SessionConfig) -> None:
        assert self.session is not None
        for member in (self.members if self.group else [self.session.remote_host]):
            self.mantts._send_signalling(
                member,
                {
                    "type": "reconfig",
                    "from": self.host.name,
                    "service_port": self.acd.service_port,
                    "data_port": self.session.local_port,
                    "config": cfg.to_dict(),
                },
            )

    # ------------------------------------------------------------------
    # multicast membership dynamics
    # ------------------------------------------------------------------
    def add_member(self, member: str) -> None:
        """A participant joins the conference (§2.1(B) dynamics)."""
        if not self.group:
            raise RuntimeError("not a multicast connection")
        if member in self.members:
            return
        self.members.append(member)
        self.mantts._negotiated  # responder will learn config from signalling
        ref = f"{self.ref}:{member}:late"
        self.mantts._pending[ref] = lambda msg: None
        self.mantts._send_signalling(
            member,
            {
                "type": "open-request",
                "ref": ref,
                "from": self.host.name,
                "service_port": self.acd.service_port,
                "config": self.cfg.to_dict(),
                "throughput_bps": self.acd.quantitative.avg_throughput_bps,
                "group": self.group,
            },
        )
        if self.session is not None:
            self.session.context.delivery.membership_changed(list(self.members))

    def remove_member(self, member: str) -> None:
        """A participant leaves; pending ACK aggregation is re-evaluated."""
        if not self.group or member not in self.members:
            return
        self.members.remove(member)
        self.mantts._send_signalling(
            member, {"type": "member-update", "group": self.group, "op": "leave"}
        )
        if self.session is not None:
            self.session.context.delivery.membership_changed(list(self.members))

    # ------------------------------------------------------------------
    # internal callbacks
    # ------------------------------------------------------------------
    def _on_network_sample(self, state: NetworkState) -> None:
        self.policies.evaluate(state)

    def _deliver(self, data: bytes, meta: dict) -> None:
        if self.on_deliver is not None:
            self.on_deliver(data, meta)

    def _fail(self, reason: str) -> None:
        self.lifecycle.fail(reason)
