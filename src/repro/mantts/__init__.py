"""MANTTS — "Map Applications and Networks To Transport Systems" (§4.1).

The policy subsystem of Figure 1: it accepts an application communication
descriptor (Table 2), selects a transport service class (Table 1, Stage I),
reconciles it with observed network state into a session configuration
specification (Stage II), negotiates with the remote MANTTS entity
(implicitly or over the out-of-band channel of Figure 3), hands the SCS to
the TKO synthesizer (Stage III), and thereafter watches the session and
network — reconfiguring mechanisms when TSA policies fire (§4.1.2).
"""

from repro.mantts.acd import ACD, TMC, TSARule
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS, Sensitivity
from repro.mantts.tsc import TSC, APP_PROFILES, AppProfile, select_tsc
from repro.mantts.scs import SCS
from repro.mantts.monitor import NetworkMonitor, NetworkState
from repro.mantts.transform import specify_scs
from repro.mantts.policies import (
    Action,
    Condition,
    PolicyEngine,
    congestion_rate_backoff,
    congestion_switch_gbn_to_sr,
    rtt_switch_to_fec,
)
from repro.mantts.adaptation import AdaptationController
from repro.mantts.resources import ResourceManager
from repro.mantts.api import MANTTS, AdaptiveConnection

__all__ = [
    "ACD",
    "TMC",
    "TSARule",
    "QualitativeQoS",
    "QuantitativeQoS",
    "Sensitivity",
    "TSC",
    "AppProfile",
    "APP_PROFILES",
    "select_tsc",
    "SCS",
    "NetworkMonitor",
    "NetworkState",
    "specify_scs",
    "Condition",
    "Action",
    "PolicyEngine",
    "congestion_switch_gbn_to_sr",
    "rtt_switch_to_fec",
    "congestion_rate_backoff",
    "AdaptationController",
    "ResourceManager",
    "MANTTS",
    "AdaptiveConnection",
]
