"""The MANTTS run-time adaptation loop (§4.1.2, closed).

The monitor samples, the policies fire rules, but until now nothing
*owned* the response to sustained trouble: route failover, degradation
that one parameter tweak cannot fix, or the destination vanishing
entirely.  The :class:`AdaptationController` closes that loop for one
live connection, subscribing to :class:`~repro.mantts.monitor.NetworkMonitor`
snapshots and driving a five-level policy ladder:

====== =============== =====================================================
level  name            response
====== =============== =====================================================
0      normal          watch
1      retuned         parameter retune (pacing rate / window clamp)
2      segued          mechanism swap via ``segue`` (GBN→SR; FEC on BER storm)
3      renegotiated    mid-stream renegotiation at reduced QoS
                       (pause → drain → re-admit → swap → resume)
4      degraded        graceful QoS downgrade + ``on_degraded`` app callback
====== =============== =====================================================

Escalation requires ``degrade_after`` *consecutive* degraded samples and
de-escalation ``restore_after`` healthy ones (hysteresis — §3(C)'s thrash
guard); a route change acts immediately (window/RTO re-derivation for the
new path's bandwidth-delay product, the paper's terrestrial→satellite
example).  A path that stays unreachable is retried a bounded number of
times with doubling backoff before the session is torn down.

Every decision is recorded in ``controller.events`` (deterministic, used
by tests) and emitted as UNITES ``adapt:*`` instants/metrics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.mantts.monitor import NetworkState
from repro.unites.obs.audit import AUDIT as _AUDIT
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.mantts.api import AdaptiveConnection

#: the ladder's level names, index == level
LEVELS = ("normal", "retuned", "segued", "renegotiated", "degraded")

#: transmission schemes whose window should track the path's BDP
_WINDOWED = ("stop-and-wait", "sliding-window", "window-rate", "tcp-aimd")


@dataclass(frozen=True)
class AdaptationDecision:
    """One ladder decision with the evidence that produced it.

    ``controller.events`` keeps the historical ``(time, action, detail)``
    tuples untouched; this richer record adds *why* — the triggering
    monitor sample, the exact thresholds it crossed, the rung the ladder
    stood on, and the outcome — so a flight-recorder dump can show the
    full cause→ladder→effect chain next to the QoS violations it
    responded to.
    """

    time: float
    action: str
    detail: str
    level: int
    rung: str
    outcome: str = ""
    #: summary of the sample that triggered the decision (None for
    #: decisions not driven by a sample, e.g. manual teardown)
    trigger: Optional[Dict[str, Any]] = None
    #: ``(threshold-name, measured, bound)`` per crossed threshold
    thresholds: Tuple[Tuple[str, float, float], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["thresholds"] = [list(t) for t in self.thresholds]
        return d


def _sample_summary(state: Optional[NetworkState]) -> Optional[Dict[str, Any]]:
    if state is None:
        return None
    return {
        "rtt": state.rtt,
        "base_rtt": state.base_rtt,
        "congestion": state.congestion,
        "loss_rate": state.loss_rate,
        "ber": state.ber,
        "bottleneck_bps": state.bottleneck_bps,
        "reachable": state.reachable,
        "path": "->".join(state.path) if state.path else "",
    }


class AdaptationController:
    """Per-connection run-time adaptation: monitor in, ladder out."""

    def __init__(
        self,
        conn: "AdaptiveConnection",
        degrade_after: int = 3,
        restore_after: int = 8,
        congestion_threshold: float = 0.6,
        loss_threshold: float = 0.05,
        ber_threshold: float = 1e-5,
        rtt_factor: float = 2.5,
        bandwidth_floor: float = 0.5,
        unreachable_after: int = 3,
        max_teardown_retries: int = 3,
        on_degraded: Optional[Callable[["AdaptiveConnection", NetworkState], None]] = None,
        on_restored: Optional[Callable[["AdaptiveConnection", NetworkState], None]] = None,
    ) -> None:
        if degrade_after < 1 or restore_after < 1 or unreachable_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1 samples")
        self.conn = conn
        self.degrade_after = degrade_after
        self.restore_after = restore_after
        self.congestion_threshold = congestion_threshold
        self.loss_threshold = loss_threshold
        self.ber_threshold = ber_threshold
        self.rtt_factor = rtt_factor
        self.bandwidth_floor = bandwidth_floor
        self.unreachable_after = unreachable_after
        self.max_teardown_retries = max_teardown_retries
        self.on_degraded = on_degraded
        self.on_restored = on_restored

        self.level = 0
        #: ordered decision log: (sim_time, action, detail) — deterministic
        self.events: List[Tuple[float, str, str]] = []
        #: structured decision-audit trail (trigger sample, thresholds
        #: crossed, rung, outcome) — what flight dumps cross-link
        self.decisions: List[AdaptationDecision] = []
        self.teardown_retries = 0
        self._baseline: Optional[NetworkState] = None
        self._last_path: Optional[Tuple[str, ...]] = None
        self._degraded_run = 0
        self._healthy_run = 0
        self._unreachable_run = 0
        self._giveup_at = unreachable_after
        self._degraded_flagged = False
        self._reneg_pending = False
        if conn.monitor is not None:
            conn.monitor.on_sample.append(self.on_sample)
        manager = getattr(conn.mantts, "manager", None)
        if manager is not None:
            manager.register_controller(self)

    # ------------------------------------------------------------------
    @property
    def level_name(self) -> str:
        return LEVELS[self.level]

    def _record(
        self,
        action: str,
        detail: str,
        state: Optional[NetworkState] = None,
        outcome: str = "",
    ) -> None:
        now = self.conn.now
        self.events.append((now, action, detail))
        decision = AdaptationDecision(
            time=now,
            action=action,
            detail=detail,
            level=self.level,
            rung=LEVELS[self.level],
            outcome=outcome,
            trigger=_sample_summary(state),
            thresholds=self._crossed(state),
        )
        self.decisions.append(decision)
        _TELEMETRY.instant(
            f"adapt:{action}", "adaptation",
            conn=self.conn.ref, level=LEVELS[self.level], detail=detail,
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "adaptation_actions_total", labels={"action": action},
                help="adaptation-ladder decisions by kind").inc()
        if _AUDIT.enabled:
            _AUDIT.note_adaptation(self.conn.ref, decision.to_dict())

    def _crossed(
        self, state: Optional[NetworkState]
    ) -> Tuple[Tuple[str, float, float], ...]:
        """Which degradation thresholds the sample crossed (evidence for
        the decision trail; mirrors :meth:`_is_degraded`'s conditions)."""
        if state is None:
            return ()
        out: List[Tuple[str, float, float]] = []
        if not state.reachable:
            out.append(("reachable", 0.0, 1.0))
            return tuple(out)
        base = self._baseline
        if state.congestion > self.congestion_threshold:
            out.append(("congestion", state.congestion, self.congestion_threshold))
        if state.loss_rate > self.loss_threshold:
            out.append(("loss_rate", state.loss_rate, self.loss_threshold))
        ber_bound = max(self.ber_threshold, (base.ber * 10.0) if base else 0.0)
        if state.ber > ber_bound:
            out.append(("ber", state.ber, ber_bound))
        if (
            state.base_rtt > 0
            and state.base_rtt != float("inf")
            and state.rtt > self.rtt_factor * state.base_rtt
        ):
            out.append(("rtt", state.rtt, self.rtt_factor * state.base_rtt))
        if (
            base is not None
            and base.bottleneck_bps > 0
            and state.bottleneck_bps < self.bandwidth_floor * base.bottleneck_bps
        ):
            out.append((
                "bandwidth", state.bottleneck_bps,
                self.bandwidth_floor * base.bottleneck_bps,
            ))
        return tuple(out)

    # ------------------------------------------------------------------
    # the monitor callback — one decision per sample
    # ------------------------------------------------------------------
    def on_sample(self, state: NetworkState) -> None:
        c = self.conn
        if c.lifecycle.failed or c.session is None or c.session.closed:
            return
        if not state.reachable:
            self._on_unreachable(state)
            return
        # a reachable sample resets the give-up ladder
        self._unreachable_run = 0
        self.teardown_retries = 0
        self._giveup_at = self.unreachable_after

        if self._baseline is None:
            self._baseline = state
            self._last_path = state.path
            return
        if state.path and self._last_path and state.path != self._last_path:
            self._on_failover(state)
            self._last_path = state.path
            self._baseline = state  # the new route is the new normal
            return
        self._last_path = state.path

        if self._is_degraded(state):
            self._healthy_run = 0
            self._degraded_run += 1
            if self._degraded_run >= self.degrade_after and not self._reneg_pending:
                self._degraded_run = 0
                self._escalate(state)
        else:
            self._degraded_run = 0
            self._healthy_run += 1
            if self.level > 0 and self._healthy_run >= self.restore_after:
                self._healthy_run = 0
                self._deescalate(state)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _is_degraded(self, state: NetworkState) -> bool:
        base = self._baseline
        assert base is not None
        if state.congestion > self.congestion_threshold:
            return True
        if state.loss_rate > self.loss_threshold:
            return True
        if state.ber > max(self.ber_threshold, base.ber * 10.0):
            return True
        if (
            state.base_rtt > 0
            and state.base_rtt != float("inf")
            and state.rtt > self.rtt_factor * state.base_rtt
        ):
            return True
        if (
            base.bottleneck_bps > 0
            and state.bottleneck_bps < self.bandwidth_floor * base.bottleneck_bps
        ):
            return True
        return False

    # ------------------------------------------------------------------
    # immediate response: route failover
    # ------------------------------------------------------------------
    def _bdp_window(self, state: NetworkState) -> int:
        """Window sized to the path's *unloaded* bandwidth-delay product,
        capped at the bottleneck queue capacity.

        The loaded RTT folds in queueing delay — sizing to it (or adding
        headroom) asks for more PDUs in flight than the path holds, and the
        excess lands in switch queues as self-induced congestion the ladder
        would then fight.  base_rtt is the propagation+serialization floor.

        The queue cap exists because windowed senders here burst: opening a
        window of W releases W PDUs back-to-back into the first bottleneck
        queue, so any W beyond the queue's depth is drop-tail loss by
        construction — and on a long-RTT path that loss converts straight
        into RTO stalls and retransmission storms.
        """
        cfg = self.conn.cfg
        seg = cfg.segment_size or 1024
        rtt = state.base_rtt if state.base_rtt != float("inf") else state.rtt
        if rtt == float("inf"):
            return cfg.window
        bdp = state.bottleneck_bps * rtt / (8 * seg)
        if state.queue_limit > 0:
            bdp = min(bdp, state.queue_limit)
        return int(min(256, max(4, bdp)))

    def _on_failover(self, state: NetworkState) -> None:
        """Re-derive window and RTO for the new route's characteristics.

        The paper's worked failover: a terrestrial→satellite route change
        leaves the old window far below (or above) the new bandwidth-delay
        product and the old RTO mid-spurious; both are recomputed from the
        fresh snapshot.  Loss during the outage is the recovery mechanism's
        job — the controller only retargets the parameters.
        """
        c = self.conn
        cfg = c.cfg
        overrides: dict = {}
        if cfg.transmission in _WINDOWED:
            overrides["window"] = self._bdp_window(state)
        rtt = state.rtt if state.rtt != float("inf") else 0.5
        rto = max(cfg.rto_min, min(4.0, 2.0 * rtt))
        overrides["rto_initial"] = rto
        c.apply_overrides(overrides, reason="failover")
        sess = c.session
        if sess is not None and not sess.closed:
            # the live timer must follow: the old path's smoothed RTT would
            # fire spurious timeouts (and burn per-PDU retry budget) until
            # backoff caught up with the new path — re-seed it and forgive
            # retries accumulated during the outage
            sess.rtt.reseed(rto)
            for entry in sess.state.outstanding.values():
                entry.retries = 0
        self._record("failover", "->".join(state.path), state=state,
                     outcome="rederived")

    # ------------------------------------------------------------------
    # the ladder
    # ------------------------------------------------------------------
    def _escalate(self, state: NetworkState) -> None:
        if self.level >= 4:
            return
        self.level += 1
        if self.level == 1:
            self._retune(state)
        elif self.level == 2:
            self._segue(state)
        elif self.level == 3:
            self._renegotiate(state)
        else:
            self._degrade(state)

    def _deescalate(self, state: NetworkState) -> None:
        """Sustained health: return to watch level.

        Mechanism swaps are deliberately left in place (switching back is
        its own policy decision, cf. the GBN↔SR restore rule); only the
        level and the application-visible degradation flag are reset.
        """
        if self._degraded_flagged:
            self._degraded_flagged = False
            manager = getattr(self.conn.mantts, "manager", None)
            if manager is not None:
                manager.note_degraded(self.conn, False)
            if self.on_restored is not None:
                self.on_restored(self.conn, state)
        prior = LEVELS[self.level]
        self.level = 0
        self._record("restore", f"from {prior}", state=state, outcome="normal")

    def _fair_rate(self, state: NetworkState, share: float = 0.5) -> float:
        cfg = self.conn.cfg
        seg = cfg.segment_size or 1024
        return max(1.0, state.bottleneck_bps * share / (8 * seg))

    def _retune(self, state: NetworkState) -> None:
        c = self.conn
        cfg = c.cfg
        overrides: dict = {}
        if cfg.rate_pps is not None:
            overrides["rate_pps"] = max(1.0, min(cfg.rate_pps * 0.6, self._fair_rate(state)))
        elif cfg.transmission in _WINDOWED:
            overrides["window"] = max(2, cfg.window // 2)
        applied = c.apply_overrides(overrides, reason="adapt-retune") if overrides else False
        self._record("retune", "applied" if applied else "noop", state=state,
                     outcome="applied" if applied else "noop")

    def _segue(self, state: NetworkState) -> None:
        """Mechanism swap chosen by dominant symptom.

        BER storm → forward error correction (loss is not congestion;
        retransmitting into a lossy channel wastes the round trips).
        Otherwise congestion/loss with GBN → selective repeat (stop
        resending what arrived).
        """
        c = self.conn
        cfg = c.cfg
        base = self._baseline
        overrides: dict = {}
        detail = "noop"
        ber_storm = state.ber > max(
            self.ber_threshold, (base.ber if base else 0.0) * 10.0
        )
        if ber_storm and cfg.recovery in ("gbn", "sr"):
            overrides = {
                "recovery": "fec-rs",
                "ack": "none",
                "transmission": "rate",
                "rate_pps": cfg.rate_pps or self._fair_rate(state),
            }
            detail = f"{cfg.recovery}->fec-rs"
        elif cfg.recovery == "gbn":
            overrides = {"recovery": "sr", "ack": "selective"}
            detail = "gbn->sr"
        if overrides:
            c.apply_overrides(overrides, reason=f"adapt-segue:{detail}")
        self._record("segue", detail, state=state, outcome=detail)

    def _renegotiate(self, state: NetworkState) -> None:
        c = self.conn
        cfg = c.cfg
        overrides: dict = {"window": min(cfg.window, self._bdp_window(state))}
        if cfg.rate_pps is not None:
            overrides["rate_pps"] = max(1.0, min(cfg.rate_pps, self._fair_rate(state)))
        try:
            new_cfg = cfg.with_(**overrides)
        except (ValueError, TypeError):
            new_cfg = cfg
        target_bps = max(8_000.0, state.bottleneck_bps * 0.5)
        self._reneg_pending = True
        self._record("renegotiate", f"target={target_bps:.0f}bps", state=state,
                     outcome="started")

        def done(ok: bool) -> None:
            self._reneg_pending = False
            self._record("renegotiate-done", "accept" if ok else "failed",
                         outcome="accept" if ok else "failed")

        started = c.lifecycle.renegotiate_midstream(
            new_cfg, throughput_bps=target_bps, on_done=done
        )
        if not started:
            self._reneg_pending = False

    def _degrade(self, state: NetworkState) -> None:
        c = self.conn
        cfg = c.cfg
        overrides: dict = {}
        if cfg.rate_pps is not None:
            overrides["rate_pps"] = max(1.0, cfg.rate_pps * 0.5)
        elif cfg.transmission in _WINDOWED:
            overrides["window"] = max(1, cfg.window // 2)
        if overrides:
            c.apply_overrides(overrides, reason="adapt-degrade")
        if not self._degraded_flagged:
            self._degraded_flagged = True
            manager = getattr(c.mantts, "manager", None)
            if manager is not None:
                manager.note_degraded(c, True)
            if self.on_degraded is not None:
                self.on_degraded(c, state)
        self._record("degrade", str(sorted(overrides)) if overrides else "flag-only",
                     state=state,
                     outcome="overrides" if overrides else "flag-only")

    # ------------------------------------------------------------------
    # unreachability: bounded retries with backoff, then teardown
    # ------------------------------------------------------------------
    def _on_unreachable(self, state: NetworkState) -> None:
        self._degraded_run = 0
        self._healthy_run = 0
        self._unreachable_run += 1
        if self._unreachable_run < self._giveup_at:
            return
        self.teardown_retries += 1
        if self.teardown_retries > self.max_teardown_retries:
            self._record("teardown", f"after {self.max_teardown_retries} retries",
                         state=state, outcome="abort")
            sess = self.conn.session
            if sess is not None and not sess.closed:
                sess.abort("adaptation: destination unreachable")
            return
        # wait exponentially longer (in monitor periods) before the next
        # escalation — the bounded-retry backoff
        self._giveup_at += self.unreachable_after * (2 ** self.teardown_retries)
        self._record("retry", f"attempt {self.teardown_retries}", state=state,
                     outcome="backoff")
