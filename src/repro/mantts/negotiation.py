"""Out-of-band QoS negotiation between MANTTS entities (§4.1.1, Figure 3).

Explicit negotiation runs over a dedicated, reliable, high-priority
signalling channel — itself an ADAPTIVE session with a small fixed
configuration (the control path of Figure 3, kept off the data fast
path).  Messages are JSON-encoded dictionaries:

``open-request``   initiator → responder: proposed SessionConfig + QoS
``open-accept``    responder → initiator: final (possibly countered) config
``open-refuse``    responder → initiator: admission failed, no counter
``reconfig``       either direction: revised config for a live session
``reconfig-ack``   confirmation
``member-update``  multicast membership change announcement

The responder's counter logic implements "negotiation need not determine
an optimal configuration, as long as it produces one that meets the
application's requirements": it clamps the proposed window and pacing
rate to what its resource manager can admit, refusing only when even the
floor cannot be met.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.mantts.resources import ResourceManager
from repro.tko.config import SessionConfig
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

#: well-known MANTTS signalling port on every ADAPTIVE host
MANTTS_PORT = 500

#: the signalling channel's own fixed configuration: reliable, ordered,
#: tiny window, high priority, implicit setup (zero-RTT for the channel
#: itself — negotiation delay is the *payload* exchange, not the channel)
SIGNALLING_CONFIG = SessionConfig(
    connection="implicit",
    transmission="sliding-window",
    detection="crc32",
    checksum_placement="trailer",
    ack="cumulative",
    recovery="gbn",
    sequencing="ordered-dedup",
    delivery="unicast",
    jitter="none",
    buffer="variable",
    window=4,
    segment_size=1024,
    rto_initial=0.25,
    priority=True,
    compact_headers=True,
    binding="reconfigurable",
)


def encode(msg: dict) -> bytes:
    """Serialize one signalling message."""
    return json.dumps(msg, separators=(",", ":")).encode()


def decode(data: bytes) -> dict:
    """Parse one signalling message (raises ValueError on garbage)."""
    try:
        msg = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed signalling message: {exc}") from exc
    if not isinstance(msg, dict) or "type" not in msg:
        raise ValueError("signalling message must be an object with a type")
    return msg


# ----------------------------------------------------------------------
def respond_to_open(
    msg: dict,
    resources: ResourceManager,
    conn_ref: str,
) -> Tuple[str, Optional[SessionConfig], dict]:
    """Responder-side admission + counter-proposal.

    Returns ``(verdict, final_config, reply_payload)`` where verdict is
    ``accept`` or ``refuse``.  On accept a resource reservation has been
    taken under ``conn_ref``.
    """
    with _TELEMETRY.span("admission", "mantts", conn=conn_ref) as sp:
        verdict, final, reply = _respond_to_open(msg, resources, conn_ref)
        sp.annotate(verdict=verdict)
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "mantts_admissions_total", labels={"verdict": verdict},
                help="admission decisions by the responder").inc()
    return verdict, final, reply


def _respond_to_open(
    msg: dict,
    resources: ResourceManager,
    conn_ref: str,
) -> Tuple[str, Optional[SessionConfig], dict]:
    proposal = SessionConfig.from_dict(msg["config"])
    requested_bps = float(msg.get("throughput_bps", 64000.0))
    seg = proposal.segment_size or 1024
    tsc = msg.get("tsc")  # admit against the class pool when one exists

    offer = resources.best_offer_bps(tsc)
    if offer <= 0:
        return "refuse", None, {"reason": "no admission capacity"}

    granted_bps = min(requested_bps, offer)
    floor = float(msg.get("min_throughput_bps", 0.0))
    if granted_bps < floor:
        return "refuse", None, {
            "reason": f"can offer {granted_bps:.0f} bps < floor {floor:.0f}",
            "offer_bps": granted_bps,
        }

    # counter: clamp pacing rate and window to the granted share
    overrides = {}
    if proposal.rate_pps is not None:
        granted_pps = max(1.0, granted_bps / (8 * seg))
        if granted_pps < proposal.rate_pps:
            overrides["rate_pps"] = granted_pps
    max_window = max(2, int(resources.buffer_budget * 0.25 / seg))
    if proposal.window > max_window:
        overrides["window"] = max_window
    final = proposal.with_(**overrides) if overrides else proposal

    buffer_bytes = final.window * seg
    if resources.admit(conn_ref, granted_bps, buffer_bytes, tsc=tsc) is None:
        return "refuse", None, {"reason": "admission race: capacity consumed"}
    reply = {
        "config": final.to_dict(),
        "granted_bps": granted_bps,
        "countered": bool(overrides),
    }
    return "accept", final, reply
