"""Connection-establishment state machine (Figure 2 stages + Figure 3).

Extracted from :mod:`repro.mantts.api` so the ``AdaptiveConnection``
handle keeps only the application surface (send/close/adapt/membership)
while the one-shot establishment sequence — transformation stages,
explicit negotiation with renegotiate-once, timeout, weakest-QoS merge,
Stage III instantiation, and the terminal connected/closed/failed
transitions — lives here as :class:`ConnectionLifecycle`.

The split mirrors the paper's structure: §4.1.1's connection-management
phases (establishment, data transfer, termination) are distinct services;
the handle delegates the establishment phase to this object and the data
transfer phase to the TKO session it produces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.mantts.tsc import select_tsc
from repro.tko.config import SessionConfig
from repro.unites.obs.audit import AUDIT as _AUDIT
from repro.unites.obs.telemetry import NULL_SPAN, TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.mantts.api import AdaptiveConnection

#: seconds an initiator waits for all negotiation replies before failing
NEGOTIATION_TIMEOUT = 3.0


class ConnectionLifecycle:
    """Drives one ``AdaptiveConnection`` from ACD to established (or failed).

    Owns the establishment-phase state: the renegotiate-once latch, the
    established/failed terminal flags, data buffered while negotiation is
    in flight, and the telemetry spans covering setup and negotiation.
    """

    def __init__(self, conn: "AdaptiveConnection") -> None:
        self.conn = conn
        #: §4.1.1: on refusal, "allow the application to re-negotiate at a
        #: lower quality of service" — one retry at the responder's offer
        self.renegotiated = False
        self.failed = False
        self.established = False
        #: a mid-stream renegotiation is in flight (pause/drain/resume)
        self.reneg_active = False
        self._reneg_attempts = 0
        #: timed-out setup negotiations retried so far (lossy-path
        #: hardening; bounded by ``mantts.negotiation_retries``)
        self._setup_attempts = 0
        #: messages accepted while negotiation is still in flight; flushed
        #: into the session the moment Stage III instantiates it
        self.pending_sends: List[bytes] = []
        #: (member, ref) per open-request sent — on failure each contacted
        #: responder gets an ``open-abort`` so its reservation rolls back
        self.sent_refs: List[tuple] = []
        # Async telemetry spans; initialized to the no-op span so every
        # exit path (failure before begin(), double-fail, ...) may end()
        # them unconditionally.
        self.setup_span = NULL_SPAN
        self.nego_span = NULL_SPAN

    @property
    def sim(self):
        return self.conn.host.sim

    @property
    def negotiation_timeout(self) -> float:
        """Seconds to wait for negotiation replies — the per-MANTTS value.

        Virtual seconds on the sim substrate, wall seconds on a real one
        (the injected clock decides); defaults to the module constant, so
        simulated timelines are unchanged.
        """
        return self.conn.mantts.negotiation_timeout

    # ------------------------------------------------------------------
    # establishment (Figure 2 stages + Figure 3 negotiation)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        c = self.conn
        acd = c.acd
        primary = acd.participants[0]
        self.setup_span = _TELEMETRY.begin(
            "connection-setup", "mantts", conn=c.ref, peer=primary
        )
        manager = c.mantts.manager
        c.monitor = manager.monitor_for(
            primary, c.mantts.monitor_interval, conn=c
        )
        state = c.monitor.snapshot()
        if not state.reachable:
            self.fail(f"no route to {primary}")
            return
        c.tsc = select_tsc(acd)                      # Stage I
        c.scs = manager.scs_for(acd, state, c.tsc, c.binding)  # Stage II
        c.members = list(acd.participants)
        if acd.is_multicast:
            c.group = f"mc-{c.ref}"
        c.policies.add_rules(acd.tsa)
        if c.default_policies and not acd.tsa:
            from repro.mantts.policies import default_policies_for

            c.policies.add_rules(default_policies_for(c.tsc, c.scs.config))
        if c.scs.config.connection == "implicit" and not acd.is_multicast:
            # implicit negotiation: configuration rides the first DATA PDU
            self.instantiate(c.scs.config)
        else:
            self.negotiate_explicit()

    def negotiate_explicit(self, throughput_bps: Optional[float] = None) -> None:
        c = self.conn
        assert c.scs is not None
        self.nego_span.end(outcome="superseded")  # no-op except on renegotiation
        self.nego_span = _TELEMETRY.begin(
            "negotiation", "mantts", parent=self.setup_span,
            conn=c.ref, attempt="retry" if self.renegotiated else "first",
        )
        acd = c.acd
        requested = throughput_bps or acd.quantitative.avg_throughput_bps
        outstanding = set(c.members)
        results: Dict[str, dict] = {}
        timeout = self.sim.schedule(
            self.negotiation_timeout, self._negotiation_timeout, outstanding
        )

        def reply_handler(member: str):
            def on_reply(msg: dict) -> None:
                if self.failed or self.established:
                    return
                results[member] = msg
                outstanding.discard(member)
                if msg["type"] == "open-refuse":
                    self.sim.cancel(timeout)
                    offer = float(msg.get("offer_bps", 0.0))
                    if (
                        c.renegotiate
                        and not self.renegotiated
                        and not c.group
                        and offer > 0.0
                    ):
                        # retry once at whatever the responder can admit
                        self.renegotiated = True
                        c.scs.note(
                            f"renegotiating down: {member} offered {offer:.0f} bps"
                        )
                        self._clamp_scs_to(offer)
                        self.negotiate_explicit(throughput_bps=offer)
                        return
                    self.fail(f"{member} refused: {msg.get('reason', '?')}")
                    return
                if not outstanding:
                    self.sim.cancel(timeout)
                    self.nego_span.end(outcome="accept", members=len(results))
                    self._complete_negotiation(results)
            return on_reply

        attempt = "retry" if self.renegotiated else "first"
        if self._setup_attempts:
            # timeout-retry refs must not collide with (or resurrect)
            # handlers from the attempt that timed out
            attempt = f"{attempt}~{self._setup_attempts}"
        for member in c.members:
            ref = f"{c.ref}:{member}:{attempt}"
            c.mantts._pending[ref] = reply_handler(member)
            self.sent_refs.append((member, ref))
            c.mantts._send_signalling(
                member,
                {
                    "type": "open-request",
                    "ref": ref,
                    "from": c.host.name,
                    "service_port": acd.service_port,
                    "config": c.scs.config.to_dict(),
                    "throughput_bps": requested,
                    "min_throughput_bps": requested * (0.5 if self.renegotiated else 0.25),
                    "group": c.group,
                    "tsc": c.tsc.value if c.tsc is not None else None,
                },
            )

    def _clamp_scs_to(self, bps: float) -> None:
        """Scale the proposed configuration down to an offered bit rate."""
        c = self.conn
        assert c.scs is not None
        cfg = c.scs.config
        overrides = {}
        if cfg.rate_pps is not None:
            seg = cfg.segment_size or 1024
            overrides["rate_pps"] = max(1.0, bps / (8 * seg))
        if overrides:
            c.scs.config = cfg.with_(**overrides)

    def _negotiation_timeout(self, outstanding: set) -> None:
        if self.established or self.failed:
            return
        m = self.conn.mantts
        if self._setup_attempts < m.negotiation_retries:
            self._setup_attempts += 1
            self._retry_negotiation()
            return
        self.fail(f"negotiation timed out waiting for {sorted(outstanding)}")

    def _retry_negotiation(self) -> None:
        """Timed-out open on a lossy path: roll back, back off, go again.

        Every contacted responder gets an ``open-abort`` for the stale
        ref (a reservation its accept may have charged must not stay on
        the remote ledger — the recipient no-ops when it holds nothing),
        the stale reply handlers are dropped, and a fresh
        :meth:`negotiate_explicit` is scheduled after an exponential
        backoff with deterministic per-attempt jitter.
        """
        import random

        c = self.conn
        m = c.mantts
        self.nego_span.end(outcome="timeout-retry")
        for member, ref in self.sent_refs:
            m._pending.pop(ref, None)
            m._send_signalling(
                member,
                {
                    "type": "open-abort",
                    "ref": ref,
                    "from": c.host.name,
                    "service_port": c.acd.service_port,
                },
            )
        self.sent_refs.clear()
        base = m.negotiation_backoff * (2 ** (self._setup_attempts - 1))
        # string-seeded: reproducible per (connection, attempt), and
        # decorrelated between the two ends of a lost exchange
        rng = random.Random(f"{c.host.name}|{c.ref}|retry{self._setup_attempts}")
        delay = base * (1.0 + m.negotiation_jitter * rng.random())
        if c.scs is not None:
            c.scs.note(
                f"negotiation attempt {self._setup_attempts} timed out; "
                f"retrying in {delay:.3f}s"
            )

        def go() -> None:
            if not self.established and not self.failed:
                self.negotiate_explicit()

        self.sim.schedule(delay, go)

    def _complete_negotiation(self, results: Dict[str, dict]) -> None:
        """Merge counters: the session runs at the *weakest* accepted QoS."""
        c = self.conn
        assert c.scs is not None
        final = c.scs.config
        for msg in results.values():
            counter = SessionConfig.from_dict(msg["config"])
            merged = {}
            if counter.window < final.window:
                merged["window"] = counter.window
            if counter.rate_pps is not None and (
                final.rate_pps is None or counter.rate_pps < final.rate_pps
            ):
                merged["rate_pps"] = counter.rate_pps
            if merged:
                final = final.with_(**merged)
                c.scs.note(f"countered by {msg.get('from', '?')}: {merged}")
        self.instantiate(final)

    def instantiate(self, cfg: SessionConfig) -> None:
        """Stage III: hand the SCS to the TKO synthesizer."""
        c = self.conn
        assert c.scs is not None
        c.scs.config = cfg
        acd = c.acd
        with _TELEMETRY.span("session-instantiate", "mantts", conn=c.ref):
            c.session = c.mantts.protocol.create_session(
                cfg,
                c.group if c.group else acd.participants[0],
                acd.service_port,
                group=c.group,
                members=c.members if c.group else None,
                on_deliver=c._deliver,
                on_connected=self.connected,
                on_closed=self.closed,
                on_open_failed=self.fail,
            )
            c.session.connect()
        if _AUDIT.enabled:
            # contract capture: the negotiated QoS is now final, the
            # session exists, and no data has flowed — the instant the
            # audit plane's conformance clock should start
            _AUDIT.attach_connection(c)
        for data in self.pending_sends:
            c.session.send(data)
        self.pending_sends.clear()
        if c.monitor is not None:
            c.monitor.on_sample.append(c._on_network_sample)
            c.monitor.start()
        unites = c.mantts.unites
        if unites is not None and acd.tmc is not None:
            unites.instrument(c, acd.tmc)

    # ------------------------------------------------------------------
    # mid-stream renegotiation (§4.1.2 "reconfigure ... in response to
    # changing network characteristics", run against a *live* session)
    # ------------------------------------------------------------------
    def renegotiate_midstream(
        self,
        new_cfg: SessionConfig,
        throughput_bps: Optional[float] = None,
        on_done: Optional[callable] = None,
    ) -> bool:
        """Pause → drain → re-negotiate → apply both ends → resume.

        The TKO session's pump is gated and the wire drained (every
        outstanding PDU acknowledged) before the configuration swap, so no
        PDU can be lost or double-delivered across the reconfiguration.
        On refusal or timeout the old configuration stays in force and the
        session resumes untouched.  ``on_done(ok)`` reports the outcome;
        the return value says whether the attempt started at all.
        """
        c = self.conn
        done = on_done if on_done is not None else (lambda ok: None)
        session = c.session
        if (
            not self.established
            or self.failed
            or self.reneg_active
            or c.group  # multicast renegotiation is out of scope
            or session is None
            or session.closed
        ):
            done(False)
            return False
        self.reneg_active = True
        self._reneg_attempts += 1
        peer = session.remote_host
        span = _TELEMETRY.begin(
            "renegotiation", "mantts", conn=c.ref,
            attempt=self._reneg_attempts, peer=peer,
        )
        finished = False

        def finish(ok: bool, outcome: str) -> None:
            nonlocal finished
            if finished:
                return
            finished = True
            self.reneg_active = False
            span.end(outcome=outcome)
            if not session.closed:
                session.resume()
            done(ok)

        session.pause()
        drain_guard = self.sim.schedule(
            self.negotiation_timeout, lambda: finish(False, "drain-timeout")
        )

        def proceed() -> None:
            if finished:
                return
            self.sim.cancel(drain_guard)
            if session.closed or self.failed:
                finish(False, "session-gone")
                return
            ref = f"{c.ref}:{peer}:reneg{self._reneg_attempts}"
            requested = throughput_bps or c.acd.quantitative.avg_throughput_bps

            def on_timeout() -> None:
                c.mantts._pending.pop(ref, None)  # drop a late reply
                finish(False, "timeout")

            timeout = self.sim.schedule(self.negotiation_timeout, on_timeout)

            def on_reply(msg: dict) -> None:
                if finished:
                    return
                self.sim.cancel(timeout)
                if msg.get("type") != "open-accept":
                    finish(False, "refused")
                    return
                final = new_cfg
                if isinstance(msg.get("config"), dict):
                    counter = SessionConfig.from_dict(msg["config"])
                    merged = {}
                    if counter.window < final.window:
                        merged["window"] = counter.window
                    if counter.rate_pps is not None and (
                        final.rate_pps is None or counter.rate_pps < final.rate_pps
                    ):
                        merged["rate_pps"] = counter.rate_pps
                    if merged:
                        final = final.with_(**merged)
                c.mantts.synthesizer.reconfigure(session, final)
                if c.scs is not None:
                    c.scs.config = final
                c.reconfig_log.append((c.now, "renegotiated"))
                c._signal_reconfig(final)
                finish(True, "accept")

            c.mantts._pending[ref] = on_reply
            c.mantts._send_signalling(
                peer,
                {
                    "type": "open-request",
                    "ref": ref,
                    "reneg": True,
                    "from": c.host.name,
                    "service_port": c.acd.service_port,
                    "data_port": session.local_port,
                    "config": new_cfg.to_dict(),
                    "throughput_bps": requested,
                    "min_throughput_bps": 0.0,
                    "group": None,
                    "tsc": c.tsc.value if c.tsc is not None else None,
                },
            )

        session.drain(proceed)
        return True

    # ------------------------------------------------------------------
    # terminal transitions
    # ------------------------------------------------------------------
    def connected(self) -> None:
        if self.failed or self.established:
            # a late success signal cannot resurrect a timed-out/failed
            # establishment, and a duplicate must not re-fire the callback
            return
        c = self.conn
        self.established = True
        self.setup_span.end(outcome="connected")
        c.mantts.manager.connection_established(c)
        if c.on_connected is not None:
            c.on_connected(c)

    def closed(self) -> None:
        if self.failed:
            # fail() already tore down and reported; closing the dead
            # session afterwards must not also fire on_closed
            return
        c = self.conn
        if c.monitor is not None:
            c.monitor.stop()
        c.mantts.connections.pop(c.ref, None)
        c.mantts.manager.connection_closed(c)
        if c.on_closed is not None:
            c.on_closed()

    def fail(self, reason: str) -> None:
        if self.failed:
            return
        self.failed = True
        c = self.conn
        self.nego_span.end(outcome="fail")
        self.setup_span.end(outcome="failed", reason=reason)
        if _AUDIT.enabled:
            _AUDIT.note_teardown(c.ref, reason)
        if c.monitor is not None:
            c.monitor.stop()
        if not self.established and self.sent_refs:
            # roll back any reservation a responder admitted for us: a
            # refused/timed-out open must not leave the remote ledger
            # charged (the recipient no-ops when it holds nothing)
            for member, ref in self.sent_refs:
                c.mantts._send_signalling(
                    member,
                    {
                        "type": "open-abort",
                        "ref": ref,
                        "from": c.host.name,
                        "service_port": c.acd.service_port,
                    },
                )
            self.sent_refs.clear()
        c.mantts.connections.pop(c.ref, None)
        c.mantts.manager.connection_failed(c)
        if c.on_failed is not None:
            c.on_failed(reason)
