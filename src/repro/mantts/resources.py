"""MANTTS resource management and admission control.

MANTTS "manages various resources (message buffers, control blocks for
open sessions, and available communication ports)" (§4.1) and the
termination phase "releases resources and recalculates transport system
load information" (§4.1.3).  The resource manager tracks per-host
bandwidth reservations and buffer commitments; explicit negotiation asks
it whether a requested QoS can be admitted, and failed admission produces
the paper's negotiate-down-or-refuse outcome.

With :meth:`ResourceManager.configure_classes` the admission bandwidth is
partitioned into per-TSC-class pools: each transport service class gets a
guaranteed share, so a burst of bulk-transfer opens cannot starve the
isochronous classes (the class-level pooling the ConnectionManager layer
admits against).  Without configured classes behaviour is exactly the
historical single-pool check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.host.nic import Host


@dataclass
class Reservation:
    """One admitted session's resource commitment."""

    conn_ref: str
    throughput_bps: float
    buffer_bytes: int
    #: TSC class the reservation was admitted under (None = unclassified)
    tsc: Optional[str] = None


@dataclass
class ClassPool:
    """Per-TSC-class admission share and accounting."""

    name: str
    share: float                 #: fraction of the admission bandwidth
    reserved_bps: float = 0.0
    admitted: int = 0
    refused: int = 0
    released: int = 0

    def stats(self) -> Dict[str, float]:
        return {
            "share": self.share,
            "reserved_bps": self.reserved_bps,
            "admitted": self.admitted,
            "refused": self.refused,
            "released": self.released,
        }


class ResourceManager:
    """Per-host admission control over bandwidth and buffer budgets."""

    def __init__(
        self,
        host: Host,
        admission_bps: float = 100e6,
        buffer_budget: Optional[int] = None,
        overbooking: float = 1.0,
    ) -> None:
        if admission_bps <= 0:
            raise ValueError("admission bandwidth must be positive")
        if overbooking < 1.0:
            raise ValueError("overbooking factor cannot be below 1.0")
        self.host = host
        self.admission_bps = admission_bps
        self.buffer_budget = buffer_budget if buffer_budget is not None else host.buffers.capacity
        self.overbooking = overbooking
        self._reservations: Dict[str, Reservation] = {}
        self.refusals = 0
        self.admissions = 0
        self.releases = 0
        #: TSC class name -> pool; empty until :meth:`configure_classes`
        self.class_pools: Dict[str, ClassPool] = {}

    # ------------------------------------------------------------------
    @property
    def reserved_bps(self) -> float:
        return sum(r.throughput_bps for r in self._reservations.values())

    @property
    def reserved_buffer(self) -> int:
        return sum(r.buffer_bytes for r in self._reservations.values())

    def available_bps(self, tsc: Optional[str] = None) -> float:
        """Admissible bandwidth — host-wide, or within one class pool."""
        total = self.admission_bps * self.overbooking - self.reserved_bps
        pool = self.class_pools.get(tsc) if tsc is not None else None
        if pool is None:
            return total
        class_cap = self.admission_bps * self.overbooking * pool.share
        return min(total, class_cap - pool.reserved_bps)

    # ------------------------------------------------------------------
    def configure_classes(self, shares: Dict[str, float]) -> None:
        """Partition admission bandwidth into guaranteed per-class shares.

        ``shares`` maps TSC class names to fractions of the admission
        bandwidth; the fractions must be positive and sum to at most 1.0.
        Admissions that name a configured class are checked against both
        the host-wide budget and the class pool; unclassified admissions
        (or unknown class names) see only the host-wide budget, exactly as
        before.
        """
        if any(s <= 0 for s in shares.values()):
            raise ValueError("class shares must be positive")
        if sum(shares.values()) > 1.0 + 1e-9:
            raise ValueError("class shares sum to more than 1.0")
        if self._reservations:
            raise RuntimeError("cannot repartition with live reservations")
        self.class_pools = {
            name: ClassPool(name, share) for name, share in shares.items()
        }

    # ------------------------------------------------------------------
    def admit(
        self,
        conn_ref: str,
        throughput_bps: float,
        buffer_bytes: int,
        tsc: Optional[str] = None,
    ) -> Optional[Reservation]:
        """Try to reserve; returns None (refusal) when over budget.

        A refusal is the signal for the negotiator to counter with a lower
        QoS rather than hard-fail the application ("allow the application
        to re-negotiate at a lower quality of service", §4.1.1).
        """
        if conn_ref in self._reservations:
            raise ValueError(f"connection {conn_ref!r} already has a reservation")
        pool = self.class_pools.get(tsc) if tsc is not None else None
        if throughput_bps > self.available_bps(tsc) or (
            self.reserved_buffer + buffer_bytes > self.buffer_budget
        ):
            self.refusals += 1
            if pool is not None:
                pool.refused += 1
            return None
        r = Reservation(conn_ref, throughput_bps, buffer_bytes, tsc=tsc)
        self._reservations[conn_ref] = r
        self.admissions += 1
        if pool is not None:
            pool.reserved_bps += throughput_bps
            pool.admitted += 1
        return r

    def best_offer_bps(self, tsc: Optional[str] = None) -> float:
        """The throughput this host could still admit (counter-proposal)."""
        return max(0.0, self.available_bps(tsc))

    def release(self, conn_ref: str) -> None:
        """Termination-phase resource release (idempotent)."""
        r = self._reservations.pop(conn_ref, None)
        if r is None:
            return
        self.releases += 1
        pool = self.class_pools.get(r.tsc) if r.tsc is not None else None
        if pool is not None:
            pool.reserved_bps = max(0.0, pool.reserved_bps - r.throughput_bps)
            pool.released += 1

    def reservation(self, conn_ref: str) -> Optional[Reservation]:
        """The live reservation under ``conn_ref``, if any."""
        return self._reservations.get(conn_ref)

    def update(self, conn_ref: str, throughput_bps: float) -> None:
        """Adjust a live reservation after renegotiation."""
        r = self._reservations.get(conn_ref)
        if r is not None:
            pool = self.class_pools.get(r.tsc) if r.tsc is not None else None
            if pool is not None:
                pool.reserved_bps = max(
                    0.0, pool.reserved_bps - r.throughput_bps + throughput_bps
                )
            r.throughput_bps = throughput_bps

    def class_stats(self) -> Dict[str, Dict[str, float]]:
        """Accounting snapshot for every configured class pool."""
        return {name: pool.stats() for name, pool in self.class_pools.items()}

    def __len__(self) -> int:
        return len(self._reservations)
