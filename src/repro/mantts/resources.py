"""MANTTS resource management and admission control.

MANTTS "manages various resources (message buffers, control blocks for
open sessions, and available communication ports)" (§4.1) and the
termination phase "releases resources and recalculates transport system
load information" (§4.1.3).  The resource manager tracks per-host
bandwidth reservations and buffer commitments; explicit negotiation asks
it whether a requested QoS can be admitted, and failed admission produces
the paper's negotiate-down-or-refuse outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.host.nic import Host


@dataclass
class Reservation:
    """One admitted session's resource commitment."""

    conn_ref: str
    throughput_bps: float
    buffer_bytes: int


class ResourceManager:
    """Per-host admission control over bandwidth and buffer budgets."""

    def __init__(
        self,
        host: Host,
        admission_bps: float = 100e6,
        buffer_budget: Optional[int] = None,
        overbooking: float = 1.0,
    ) -> None:
        if admission_bps <= 0:
            raise ValueError("admission bandwidth must be positive")
        if overbooking < 1.0:
            raise ValueError("overbooking factor cannot be below 1.0")
        self.host = host
        self.admission_bps = admission_bps
        self.buffer_budget = buffer_budget if buffer_budget is not None else host.buffers.capacity
        self.overbooking = overbooking
        self._reservations: Dict[str, Reservation] = {}
        self.refusals = 0

    # ------------------------------------------------------------------
    @property
    def reserved_bps(self) -> float:
        return sum(r.throughput_bps for r in self._reservations.values())

    @property
    def reserved_buffer(self) -> int:
        return sum(r.buffer_bytes for r in self._reservations.values())

    def available_bps(self) -> float:
        return self.admission_bps * self.overbooking - self.reserved_bps

    # ------------------------------------------------------------------
    def admit(
        self,
        conn_ref: str,
        throughput_bps: float,
        buffer_bytes: int,
    ) -> Optional[Reservation]:
        """Try to reserve; returns None (refusal) when over budget.

        A refusal is the signal for the negotiator to counter with a lower
        QoS rather than hard-fail the application ("allow the application
        to re-negotiate at a lower quality of service", §4.1.1).
        """
        if conn_ref in self._reservations:
            raise ValueError(f"connection {conn_ref!r} already has a reservation")
        if throughput_bps > self.available_bps() or (
            self.reserved_buffer + buffer_bytes > self.buffer_budget
        ):
            self.refusals += 1
            return None
        r = Reservation(conn_ref, throughput_bps, buffer_bytes)
        self._reservations[conn_ref] = r
        return r

    def best_offer_bps(self) -> float:
        """The throughput this host could still admit (counter-proposal)."""
        return max(0.0, self.available_bps())

    def release(self, conn_ref: str) -> None:
        """Termination-phase resource release (idempotent)."""
        self._reservations.pop(conn_ref, None)

    def reservation(self, conn_ref: str) -> Optional[Reservation]:
        """The live reservation under ``conn_ref``, if any."""
        return self._reservations.get(conn_ref)

    def update(self, conn_ref: str, throughput_bps: float) -> None:
        """Adjust a live reservation after renegotiation."""
        r = self._reservations.get(conn_ref)
        if r is not None:
            r.throughput_bps = throughput_bps

    def __len__(self) -> int:
        return len(self._reservations)
