"""Reconfiguration policies: the *when* and *what* of adaptation.

The paper's central claim (§3(C)) is that related work supplies
*mechanisms* (how to switch) but not *policies* (when to switch, and to
what).  This module is the policy half: TSA <condition, action> rules
(Table 2) evaluated against the monitored network state and session
statistics, with edge-triggering and hysteresis so a noisy metric doesn't
cause reconfiguration thrash.

The built-in rule builders encode the paper's two worked examples:

* :func:`congestion_switch_gbn_to_sr` — "switch a session's retransmission
  mechanism from go-back-n to selective repeat ... [when] congestion in
  the network increases beyond a specified threshold", and restore GBN
  "when congestion subsides, thereby reducing buffering requirements";
* :func:`rtt_switch_to_fec` — "switch from retransmission-based to
  forward error correction-based when the round-trip delay increases
  beyond some threshold (e.g., when a route switches from a terrestrial
  link to a satellite link)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Union

from repro.mantts.acd import TSARule
from repro.mantts.monitor import NetworkState

if TYPE_CHECKING:  # pragma: no cover
    from repro.mantts.api import AdaptiveConnection

#: override values may be constants or callables(cfg, state) -> value
OverrideValue = Union[object, Callable]

# re-exported for convenience in ACDs
Condition = Tuple[str, str, float]
Action = str


@dataclass
class _RuleState:
    rule: TSARule
    was_true: bool = False
    last_fired: float = -1e18


class PolicyEngine:
    """Evaluates TSA rules for one adaptive connection."""

    #: minimum interval between firings of the same rule, seconds
    REFIRE_GUARD = 1.0

    def __init__(self, connection: "AdaptiveConnection") -> None:
        self.connection = connection
        self._rules: List[_RuleState] = []
        self.firings: List[Tuple[float, str, str]] = []

    def add_rule(self, rule: TSARule) -> None:
        self._rules.append(_RuleState(rule))
        # a lazily-armed monitor (repro.host.connmgr) only ticks while
        # someone consumes samples; a new rule is a new consumer
        monitor = getattr(self.connection, "monitor", None)
        poke = getattr(monitor, "poke", None)
        if poke is not None:
            poke()

    def add_rules(self, rules) -> None:
        for r in rules:
            self.add_rule(r)

    @property
    def active(self) -> bool:
        """Whether any rule is installed (samples have observable effect)."""
        return bool(self._rules)

    # ------------------------------------------------------------------
    def metric_value(self, name: str, state: NetworkState) -> Optional[float]:
        """Resolve a rule metric against network state + session stats."""
        conn = self.connection
        stats = conn.session.stats if conn.session is not None else None
        if name == "congestion":
            return state.congestion
        if name == "rtt":
            return state.rtt
        if name == "loss_rate":
            return state.loss_rate
        if name == "bottleneck_bps":
            return state.bottleneck_bps
        if name == "ber":
            return state.ber
        if stats is not None:
            if name == "retransmission_rate":
                sent = max(1, stats.pdus_sent)
                return stats.retransmissions / sent
            if name == "jitter":
                return stats.jitter
            if name == "mean_latency":
                return stats.mean_latency
        if name == "buffer_fill":
            return conn.host.buffers.fill_fraction
        return None

    def evaluate(self, state: NetworkState) -> None:
        """Edge-triggered rule evaluation (called per monitor sample)."""
        now = self.connection.now
        for rs in self._rules:
            value = self.metric_value(rs.rule.metric, state)
            if value is None:
                continue
            holds = rs.rule.holds(value)
            fire = holds and not rs.was_true and (now - rs.last_fired) >= self.REFIRE_GUARD
            rs.was_true = holds
            if not fire:
                continue
            rs.last_fired = now
            self.firings.append((now, rs.rule.metric, rs.rule.action))
            self._execute(rs.rule, state)

    def _execute(self, rule: TSARule, state: NetworkState) -> None:
        conn = self.connection
        if rule.action == "adjust-scs":
            overrides = {}
            for key, value in rule.overrides:
                overrides[key] = value(conn.cfg, state) if callable(value) else value
            reason = rule.tag or f"{rule.metric}{rule.op}{rule.threshold}"
            conn.apply_overrides(overrides, reason=reason)
        elif rule.action == "adjust-tsc":
            conn.change_tsc(rule.tag, state)
        else:  # notify
            conn.notify_app(rule.tag or rule.metric, state)


# ----------------------------------------------------------------------
# built-in policy sets (the paper's worked examples)
# ----------------------------------------------------------------------
def congestion_switch_gbn_to_sr(
    high: float = 0.5, low: float = 0.15
) -> Tuple[TSARule, TSARule]:
    """GBN → SR when congestion exceeds ``high``; back when below ``low``."""
    to_sr = TSARule(
        metric="congestion",
        op=">",
        threshold=high,
        action="adjust-scs",
        overrides=(("recovery", "sr"), ("ack", "selective")),
        tag="gbn->sr",
    )
    to_gbn = TSARule(
        metric="congestion",
        op="<",
        threshold=low,
        action="adjust-scs",
        overrides=(("recovery", "gbn"), ("ack", "cumulative")),
        tag="sr->gbn",
    )
    return to_sr, to_gbn


def rtt_switch_to_fec(
    threshold: float = 0.2,
    restore_below: Optional[float] = None,
    code: str = "fec-rs",
) -> Tuple[TSARule, ...]:
    """Retransmission → FEC when RTT crosses ``threshold`` (satellite).

    The override set is *complete*: dropping the ACK stream forces the
    transmission control onto pure rate pacing (a window cannot open
    without ACKs), with the pacing rate carried over from the session's
    current configuration.
    """

    def keep_rate(cfg, state: NetworkState) -> float:
        if cfg.rate_pps:
            return cfg.rate_pps
        seg = cfg.segment_size or 1024
        # pace at the bottleneck's fair share estimate
        return max(1.0, state.bottleneck_bps * 0.5 / (8 * seg))

    to_fec = TSARule(
        metric="rtt",
        op=">",
        threshold=threshold,
        action="adjust-scs",
        overrides=(
            ("recovery", code),
            ("ack", "none"),
            ("transmission", "rate"),
            ("rate_pps", keep_rate),
        ),
        tag="retransmit->fec",
    )
    if restore_below is None:
        return (to_fec,)
    back = TSARule(
        metric="rtt",
        op="<",
        threshold=restore_below,
        action="adjust-scs",
        overrides=(
            ("recovery", "gbn"),
            ("ack", "cumulative"),
            ("transmission", "window-rate"),
        ),
        tag="fec->retransmit",
    )
    return to_fec, back


def congestion_rate_backoff(
    threshold: float = 0.6, factor: float = 0.5
) -> Tuple[TSARule]:
    """Increase the inter-PDU gap (reduce rate) under congestion — the
    paper's "adjust the SCS" example (§4.1.2)."""

    def reduced(cfg, state: NetworkState) -> float:
        current = cfg.rate_pps or 1000.0
        return max(1.0, current * factor)

    return (
        TSARule(
            metric="congestion",
            op=">",
            threshold=threshold,
            action="adjust-scs",
            overrides=(("rate_pps", reduced),),
            tag="rate-backoff",
        ),
    )


def congestion_window_rate_clamp(
    threshold: float = 0.6, restore_below: float = 0.1
) -> Tuple[TSARule, TSARule]:
    """Add rate control on top of the window under congestion; remove it
    when the path clears (reliable-elastic traffic's congestion answer)."""

    def clamped_rate(cfg, state: NetworkState) -> float:
        seg = cfg.segment_size or 1024
        # queue occupancy saturates at 1.0 under any overload, so a pure
        # (1 - congestion) share would starve the session; keep a floor
        share = max(0.25, 1.0 - state.congestion)
        return max(1.0, state.bottleneck_bps * share * 0.8 / (8 * seg))

    clamp = TSARule(
        metric="congestion",
        op=">",
        threshold=threshold,
        action="adjust-scs",
        overrides=(("transmission", "window-rate"), ("rate_pps", clamped_rate)),
        tag="window->window-rate",
    )
    release = TSARule(
        metric="congestion",
        op="<",
        threshold=restore_below,
        action="adjust-scs",
        overrides=(("transmission", "sliding-window"), ("rate_pps", None)),
        tag="window-rate->window",
    )
    return clamp, release


def rtt_window_rescale(threshold: float = 0.15) -> Tuple[TSARule]:
    """Rescale the flow-control window to the new bandwidth-delay product
    when the RTT regime changes (§2.2(C): long-delay paths need "large
    flow-control windows ... window scaling factors"; E4 shows the
    starvation when nobody does this)."""

    def bdp_window(cfg, state: NetworkState) -> int:
        seg = cfg.segment_size or 1024
        bdp = state.bottleneck_bps * state.rtt / (8 * seg)
        return int(min(256, max(8, bdp * 1.5)))

    return (
        TSARule(
            metric="rtt",
            op=">",
            threshold=threshold,
            action="adjust-scs",
            overrides=(("window", bdp_window),),
            tag="window-rescale",
        ),
    )


def default_policies_for(tsc, cfg) -> Tuple[TSARule, ...]:
    """The default policy bundle a TSC "embodies" (§4.1.1).

    Installed by MANTTS when the application opts in and supplies no TSA
    rules of its own:

    * reliable elastic traffic — congestion-driven GBN↔SR switching plus
      window-rate clamping (the paper's first worked example);
    * loss-tolerant isochronous traffic using retransmission — the
      RTT-threshold switch to FEC (the second worked example) and rate
      backoff under congestion.
    """
    from repro.mantts.tsc import TSC

    rules: tuple = ()
    iso = tsc in (TSC.INTERACTIVE_ISOCHRONOUS, TSC.DISTRIBUTIONAL_ISOCHRONOUS)
    if cfg.recovery in ("gbn", "sr") and not iso:
        rules += congestion_switch_gbn_to_sr()
        rules += congestion_window_rate_clamp()
    if iso:
        rules += congestion_rate_backoff()
        if cfg.recovery in ("gbn", "sr"):
            rules += rtt_switch_to_fec(threshold=0.2)
    return rules


def buffer_pressure_notify(threshold: float = 0.85) -> Tuple[TSARule]:
    """Application-specific action: tell the app the receiver is filling
    up so it can, e.g., switch to a heavier compression scheme (§4.1.2's
    call-back example)."""
    return (
        TSARule(
            metric="buffer_fill",
            op=">",
            threshold=threshold,
            action="notify",
            tag="buffer-pressure",
        ),
    )
