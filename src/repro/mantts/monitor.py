"""MANTTS Network Monitor Interface (MANTTS-NMI).

"A network state descriptor maintained by the MANTTS-NMI samples, records,
and estimates the current state of dynamic network characteristics"
(§4.1.1).  The monitor watches one path, periodically sampling:

* static-per-route facts — path MTU, bottleneck bandwidth, compound BER,
  base propagation RTT (these change when routes change, which is exactly
  the failover signal of §4.1.2);
* dynamic state — queue occupancy along the path (the congestion signal)
  and measured loss at the path's links, both EWMA-smoothed.

The intermediate-node visibility models the paper's negotiation "with
intermediate switching nodes": ADAPTIVE switch nodes expose their queue
state to MANTTS entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


@dataclass(frozen=True)
class NetworkState:
    """One snapshot of a path's characteristics."""

    src: str
    dst: str
    reachable: bool
    rtt: float                 #: estimated round-trip time, seconds
    base_rtt: float            #: unloaded (propagation + serialization) RTT
    bottleneck_bps: float
    mtu: int
    ber: float
    congestion: float          #: mean queue fill fraction along path [0,1]
    loss_rate: float           #: EWMA of per-link overflow drop fraction
    hops: int
    #: the node sequence currently routing this path — a change here *is*
    #: the §4.1.2 failover signal ("routes change from a terrestrial link
    #: to a satellite link"); empty when unreachable
    path: Tuple[str, ...] = ()
    #: smallest per-link queue capacity along the path, in PDUs — the
    #: burst the route can absorb without drop-tail loss (0 = unknown)
    queue_limit: int = 0

    @property
    def bandwidth_delay_pdus(self) -> int:
        """Bandwidth×delay product in nominal 1 kB PDUs — window sizing."""
        if self.rtt <= 0 or self.bottleneck_bps <= 0:
            return 1
        return max(1, int(self.bottleneck_bps * self.rtt / (8 * 1024)))


class NetworkMonitor:
    """Periodic sampler producing :class:`NetworkState` for one path."""

    #: EWMA smoothing factor for congestion/loss estimates
    ALPHA = 0.3

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        src: str,
        dst: str,
        interval: float = 0.1,
    ) -> None:
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.interval = interval
        self._congestion = 0.0
        self._loss = 0.0
        self._queue_delay = 0.0
        self._prev_counts: Optional[tuple] = None
        self.samples = 0
        self.on_sample: List[Callable[[NetworkState], None]] = []
        self._timer = Timer(sim, self._tick, interval=interval, periodic=True)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer.schedule(self.interval)

    def stop(self) -> None:
        self._timer.cancel()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.samples += 1
        state = self.snapshot()
        for cb in self.on_sample:
            cb(state)

    def snapshot(self) -> NetworkState:
        """Sample the path now and fold into the smoothed estimates."""
        net = self.network
        links = net.path_links(self.src, self.dst)
        if not links:
            return NetworkState(
                self.src, self.dst, False, float("inf"), float("inf"),
                0.0, 0, 1.0, 1.0, 1.0, 0,
            )
        # congestion: instantaneous queue occupancy, smoothed
        inst_cong = net.path_queue_occupancy(self.src, self.dst)
        self._congestion += self.ALPHA * (inst_cong - self._congestion)
        # queueing delay contribution: queued bytes / link rate, summed
        qdelay = sum(
            l.queue_len * 1000 * 8.0 / l.bandwidth_bps for l in links
        )
        self._queue_delay += self.ALPHA * (qdelay - self._queue_delay)
        # loss: delta of overflow drops vs delta of offered frames
        drops = sum(l.stats.dropped_overflow for l in links)
        offered = sum(l.stats.enqueued + l.stats.dropped_overflow for l in links)
        if self._prev_counts is not None:
            d_drop = drops - self._prev_counts[0]
            d_off = offered - self._prev_counts[1]
            inst_loss = d_drop / d_off if d_off > 0 else 0.0
            self._loss += self.ALPHA * (inst_loss - self._loss)
        self._prev_counts = (drops, offered)

        base_rtt = self.network.nominal_rtt(self.src, self.dst) or float("inf")
        return NetworkState(
            src=self.src,
            dst=self.dst,
            reachable=True,
            rtt=base_rtt + 2 * self._queue_delay,
            base_rtt=base_rtt,
            bottleneck_bps=net.path_bottleneck_bps(self.src, self.dst) or 0.0,
            mtu=net.path_mtu(self.src, self.dst) or 0,
            ber=net.path_ber(self.src, self.dst),
            congestion=self._congestion,
            loss_rate=max(0.0, self._loss),
            hops=len(links),
            path=tuple(net.route(self.src, self.dst) or ()),
            queue_limit=min(l.queue_limit for l in links),
        )
