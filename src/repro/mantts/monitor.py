"""MANTTS Network Monitor Interface (MANTTS-NMI).

"A network state descriptor maintained by the MANTTS-NMI samples, records,
and estimates the current state of dynamic network characteristics"
(§4.1.1).  The monitor watches one path, periodically sampling:

* static-per-route facts — path MTU, bottleneck bandwidth, compound BER,
  base propagation RTT (these change when routes change, which is exactly
  the failover signal of §4.1.2);
* dynamic state — queue occupancy along the path (the congestion signal)
  and measured loss at the path's links, both EWMA-smoothed.

The intermediate-node visibility models the paper's negotiation "with
intermediate switching nodes": ADAPTIVE switch nodes expose their queue
state to MANTTS entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


@dataclass(frozen=True)
class NetworkState:
    """One snapshot of a path's characteristics."""

    src: str
    dst: str
    reachable: bool
    rtt: float                 #: estimated round-trip time, seconds
    base_rtt: float            #: unloaded (propagation + serialization) RTT
    bottleneck_bps: float
    mtu: int
    ber: float
    congestion: float          #: mean queue fill fraction along path [0,1]
    loss_rate: float           #: EWMA of per-link overflow drop fraction
    hops: int
    #: the node sequence currently routing this path — a change here *is*
    #: the §4.1.2 failover signal ("routes change from a terrestrial link
    #: to a satellite link"); empty when unreachable
    path: Tuple[str, ...] = ()
    #: smallest per-link queue capacity along the path, in PDUs — the
    #: burst the route can absorb without drop-tail loss (0 = unknown)
    queue_limit: int = 0

    @property
    def bandwidth_delay_pdus(self) -> int:
        """Bandwidth×delay product in nominal 1 kB PDUs — window sizing."""
        if self.rtt <= 0 or self.bottleneck_bps <= 0:
            return 1
        return max(1, int(self.bottleneck_bps * self.rtt / (8 * 1024)))


class PathProbe(NamedTuple):
    """One raw (un-smoothed) walk of a path's links.

    Everything here is a pure read of network state at one instant, so
    monitors watching the same ``(src, dst)`` pair inside the same kernel
    event may share a single probe (the ConnectionManager's probe cache);
    the per-connection EWMA fold stays private to each monitor.
    """

    reachable: bool
    inst_congestion: float
    inst_queue_delay: float
    drops: int
    offered: int
    base_rtt: float
    bottleneck_bps: float
    mtu: int
    ber: float
    hops: int
    path: Tuple[str, ...]
    queue_limit: int


def probe_path(network: Network, src: str, dst: str) -> PathProbe:
    """Walk the path once, collecting every raw input the fold needs."""
    links = network.path_links(src, dst)
    if not links:
        return PathProbe(False, 0.0, 0.0, 0, 0, float("inf"), 0.0, 0, 1.0, 0, (), 0)
    inst_cong = network.path_queue_occupancy(src, dst)
    qdelay = sum(l.queue_len * 1000 * 8.0 / l.bandwidth_bps for l in links)
    drops = sum(l.stats.dropped_overflow for l in links)
    offered = sum(l.stats.enqueued + l.stats.dropped_overflow for l in links)
    base_rtt = network.nominal_rtt(src, dst) or float("inf")
    return PathProbe(
        reachable=True,
        inst_congestion=inst_cong,
        inst_queue_delay=qdelay,
        drops=drops,
        offered=offered,
        base_rtt=base_rtt,
        bottleneck_bps=network.path_bottleneck_bps(src, dst) or 0.0,
        mtu=network.path_mtu(src, dst) or 0,
        ber=network.path_ber(src, dst),
        hops=len(links),
        path=tuple(network.route(src, dst) or ()),
        queue_limit=min(l.queue_limit for l in links),
    )


class NetworkMonitor:
    """Periodic sampler producing :class:`NetworkState` for one path."""

    #: EWMA smoothing factor for congestion/loss estimates
    ALPHA = 0.3

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        src: str,
        dst: str,
        interval: float = 0.1,
    ) -> None:
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.interval = interval
        self._congestion = 0.0
        self._loss = 0.0
        self._queue_delay = 0.0
        self._prev_counts: Optional[tuple] = None
        self.samples = 0
        self.on_sample: List[Callable[[NetworkState], None]] = []
        self._timer = Timer(sim, self._tick, interval=interval, periodic=True)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer.schedule(self.interval)

    def stop(self) -> None:
        self._timer.cancel()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.samples += 1
        state = self.snapshot()
        for cb in self.on_sample:
            cb(state)

    def _probe(self) -> PathProbe:
        """One raw path walk; subclasses may serve this from a shared cache."""
        return probe_path(self.network, self.src, self.dst)

    def snapshot(self) -> NetworkState:
        """Sample the path now and fold into the smoothed estimates."""
        raw = self._probe()
        if not raw.reachable:
            return NetworkState(
                self.src, self.dst, False, float("inf"), float("inf"),
                0.0, 0, 1.0, 1.0, 1.0, 0,
            )
        # congestion: instantaneous queue occupancy, smoothed
        self._congestion += self.ALPHA * (raw.inst_congestion - self._congestion)
        # queueing delay contribution: queued bytes / link rate, summed
        self._queue_delay += self.ALPHA * (raw.inst_queue_delay - self._queue_delay)
        # loss: delta of overflow drops vs delta of offered frames
        if self._prev_counts is not None:
            d_drop = raw.drops - self._prev_counts[0]
            d_off = raw.offered - self._prev_counts[1]
            inst_loss = d_drop / d_off if d_off > 0 else 0.0
            self._loss += self.ALPHA * (inst_loss - self._loss)
        self._prev_counts = (raw.drops, raw.offered)

        return NetworkState(
            src=self.src,
            dst=self.dst,
            reachable=True,
            rtt=raw.base_rtt + 2 * self._queue_delay,
            base_rtt=raw.base_rtt,
            bottleneck_bps=raw.bottleneck_bps,
            mtu=raw.mtu,
            ber=raw.ber,
            congestion=self._congestion,
            loss_rate=max(0.0, self._loss),
            hops=raw.hops,
            path=raw.path,
            queue_limit=raw.queue_limit,
        )
