"""The Session Configuration Specification (Stage II output).

"The SCS is a blueprint that specifies a set of protocol mechanisms that
implement the selected TSC policies ... based upon information regarding
static and dynamic network characteristics, along with information
obtained from negotiating with remote ... entities" (§4.1.1).

Structurally the SCS wraps the executable
:class:`~repro.tko.config.SessionConfig` together with the provenance
MANTTS needs later: which TSC produced it, the network snapshot it was
derived from, and the negotiable parameters that the remote entity may
counter during explicit negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mantts.monitor import NetworkState
from repro.mantts.tsc import TSC
from repro.tko.config import SessionConfig


@dataclass
class SCS:
    """One session configuration specification."""

    config: SessionConfig
    tsc: TSC
    network: Optional[NetworkState] = None
    #: reason strings recorded at each derivation/negotiation step
    rationale: list = field(default_factory=list)

    def note(self, reason: str) -> None:
        """Record one derivation decision (kept for experiment reports)."""
        self.rationale.append(reason)

    def clone(self) -> "SCS":
        """An independent SCS: shared immutable config, private rationale.

        Cache layers (:mod:`repro.host.connmgr`) hand out clones so one
        connection's negotiation notes and config swaps never leak into
        another connection that derived the same specification.
        """
        return SCS(self.config, self.tsc, self.network, list(self.rationale))

    def negotiable(self) -> dict:
        """Parameters the responder may counter (Table 2's category (1))."""
        c = self.config
        return {
            "window": c.window,
            "rate_pps": c.rate_pps,
            "segment_size": c.segment_size,
            "fec_k": c.fec_k,
            "fec_r": c.fec_r,
            "playout_delay": c.playout_delay,
        }

    def describe(self) -> str:
        return f"[{self.tsc.value}] {self.config.describe()}"
