"""Quality-of-service parameter sets (Table 2's quantitative/qualitative).

The paper splits QoS into *quantitative* performance criteria (throughput,
latency, jitter, error-rate probabilities, duration) and *qualitative*
functional requests (sequencing, duplicate sensitivity, connection
management style, transmission granularity).  Table 1 expresses several of
these as ordinal sensitivities (low/moderate/high), so a small ordinal type
is provided for profile definitions; hard numeric bounds live in
``QuantitativeQoS``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Sensitivity(enum.IntEnum):
    """Ordinal sensitivity scale used by Table 1's columns."""

    NONE = 0
    LOW = 1
    MODERATE = 2
    HIGH = 3
    VERY_HIGH = 4

    @classmethod
    def parse(cls, text: str) -> "Sensitivity":
        key = text.strip().upper().replace("-", "_").replace(" ", "_")
        aliases = {
            "MOD": "MODERATE",
            "VERY_LOW": "NONE",
            "VAR": "MODERATE",  # "variable" rows default to moderate
            "N_D": "NONE",
            "N/D": "NONE",
        }
        key = aliases.get(key, key)
        return cls[key]


@dataclass(frozen=True)
class QuantitativeQoS:
    """Numeric performance criteria requested by the application."""

    #: sustained application-level throughput required, bits/second
    avg_throughput_bps: float = 64_000.0
    #: peak throughput during bursts, bits/second
    peak_throughput_bps: Optional[float] = None
    #: one-way delivery latency bound, seconds (None = best effort)
    max_latency: Optional[float] = None
    #: delivery-time standard-deviation bound, seconds
    max_jitter: Optional[float] = None
    #: tolerable fraction of messages lost (0.0 = full reliability)
    loss_tolerance: float = 0.0
    #: expected session duration, seconds (drives implicit-vs-explicit
    #: negotiation and whether adaptive reconfiguration is worthwhile)
    duration: float = 60.0
    #: typical application message size, bytes
    message_size: int = 1024

    def __post_init__(self) -> None:
        if self.avg_throughput_bps <= 0:
            raise ValueError("average throughput must be positive")
        if not (0.0 <= self.loss_tolerance <= 1.0):
            raise ValueError("loss tolerance is a fraction in [0,1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.message_size <= 0:
            raise ValueError("message size must be positive")

    @property
    def peak_bps(self) -> float:
        return self.peak_throughput_bps or self.avg_throughput_bps

    @property
    def burst_factor(self) -> float:
        """Peak/average ratio — Table 1's "Burst Factor" column."""
        return self.peak_bps / self.avg_throughput_bps


@dataclass(frozen=True)
class QualitativeQoS:
    """Functional behaviour requested by the application."""

    #: in-order delivery required (Table 1 "Order Sens")
    ordered: bool = True
    #: duplicates must be suppressed (Table 2 "duplicate sensitivity")
    duplicate_sensitive: bool = True
    #: isochronous pacing: deliver at a steady clock (voice/video)
    isochronous: bool = False
    #: hard real-time delivery (manufacturing control)
    real_time: bool = False
    #: prioritized network delivery requested (Table 1 "Priority Delivery")
    priority: bool = False
    #: multicast association (Table 1 "Multicast")
    multicast: bool = False
    #: "explicit"/"implicit"/None — connection-management preference
    connection_preference: Optional[str] = None
    #: request-response interaction (OLTP/RPC): setup latency dominates
    transactional: bool = False

    def __post_init__(self) -> None:
        if self.connection_preference not in (None, "explicit", "implicit"):
            raise ValueError("connection preference is explicit/implicit/None")
