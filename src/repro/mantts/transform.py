"""Stage II: TSC × ACD × network state → Session Configuration Specification.

This module is the "requirement-driven transformation process" of Figure 2.
Each mechanism slot is chosen by an explicit, documented rule reconciling
the TSC's policy leanings with the measured network (avoiding both the
*overweight* and *underweight* misconfigurations of §2.2(B)):

* reliability — full reliability wants retransmission; pick selective
  repeat when the path is lossy/congested (retransmitting everything would
  add to the congestion) and go-back-N otherwise (cheaper receiver).
  Loss-tolerant isochronous traffic gets FEC when the RTT is large
  (retransmission would blow the latency budget) or nothing on clean LANs;
* detection — no checksum only when the application tolerates errors *and*
  the medium is near error-free; trailer placement whenever the compact
  header format is in use;
* transmission control — isochronous sources are rate-paced at their
  (negotiated) media rate; elastic traffic gets a sliding window sized to
  the bandwidth-delay product; congested WANs add rate control on top;
* connection management — implicit for transactional/short/loss-tolerant
  sessions (no setup RTT), explicit otherwise, 3-way only when full
  reliability demands agreement;
* jitter — a playout buffer sized from the jitter bound and current RTT.
"""

from __future__ import annotations

from typing import Optional

from repro.mantts.acd import ACD
from repro.mantts.monitor import NetworkState
from repro.mantts.scs import SCS
from repro.mantts.tsc import TSC, select_tsc
from repro.tko.config import SessionConfig

#: RTT beyond which retransmission-based recovery is considered harmful
#: for latency-bounded traffic (the satellite threshold of §3(C))
FEC_RTT_THRESHOLD = 0.2
#: path loss above which selective repeat is preferred over go-back-N
SR_LOSS_THRESHOLD = 0.01
#: congestion level above which rate control supplements the window
RATE_CONGESTION_THRESHOLD = 0.3
#: session durations below this never pay an explicit negotiation RTT
SHORT_SESSION = 5.0


def specify_scs(
    acd: ACD,
    network: NetworkState,
    tsc: Optional[TSC] = None,
    binding: str = "dynamic",
) -> SCS:
    """Derive the SCS for ``acd`` over the path described by ``network``."""
    if tsc is None:
        tsc = select_tsc(acd)
    quant, qual = acd.quantitative, acd.qualitative
    scs = SCS(config=SessionConfig(), tsc=tsc, network=network)
    iso = tsc in (TSC.INTERACTIVE_ISOCHRONOUS, TSC.DISTRIBUTIONAL_ISOCHRONOUS)
    reliable = quant.loss_tolerance == 0.0
    rtt = network.rtt if network.reachable else 0.1

    # --- connection management -----------------------------------------
    # Low-rate isochronous sessions (voice) stay implicit: no setup RTT.
    # High-bandwidth media negotiates explicitly — "the additional time
    # spent negotiating QoS should improve the overall performance for
    # longer-duration, high-bandwidth connections" (§4.1.1) — it needs
    # resources reserved along the path.
    light_iso = iso and quant.peak_bps < 1e6
    if qual.connection_preference == "implicit" or (
        qual.connection_preference is None
        and (qual.transactional or quant.duration < SHORT_SESSION or light_iso)
    ):
        connection = "implicit"
        scs.note("implicit connection: setup RTT matters more than negotiation")
    elif reliable and quant.duration >= SHORT_SESSION:
        connection = "explicit-3way"
        scs.note("explicit 3-way: long reliable session justifies full agreement")
    else:
        connection = "explicit-2way"
        scs.note("explicit 2-way: agreement at one RTT of setup cost")

    # --- delivery --------------------------------------------------------
    delivery = "multicast" if acd.is_multicast else "unicast"
    if delivery == "multicast":
        connection = "implicit"  # per-member handshakes are MANTTS' job
        scs.note("multicast delivery: implicit per-session establishment")

    # --- error detection --------------------------------------------------
    if quant.loss_tolerance >= 0.05 and network.ber < 1e-8 and not reliable:
        detection = "none"
        scs.note("no checksum: error-tolerant app on near-error-free medium")
    elif reliable and not iso:
        detection = "crc32" if qual.real_time else "checksum"
        scs.note(f"{detection}: full reliability requested")
    else:
        detection = "checksum"
        scs.note("checksum: damaged PDUs dropped, recovered by reliability scheme")

    # --- recovery & acknowledgment ----------------------------------------
    lossy = network.loss_rate > SR_LOSS_THRESHOLD or network.congestion > 0.5
    if reliable:
        if lossy:
            recovery, ack = "sr", "selective"
            scs.note("selective repeat: lossy/congested path, resend only gaps")
        else:
            recovery, ack = "gbn", "cumulative"
            scs.note("go-back-N: clean path, minimal receiver state")
    elif iso and (rtt > FEC_RTT_THRESHOLD or network.loss_rate > quant.loss_tolerance):
        recovery, ack = ("fec-rs", "none") if network.loss_rate > 0.05 else ("fec-xor", "none")
        scs.note(f"{recovery}: repair without retransmission latency (rtt={rtt:.3f}s)")
    elif quant.loss_tolerance >= 0.05:
        recovery, ack = "none", "none"
        scs.note("no recovery: losses within the application's tolerance")
    else:
        recovery, ack = "gbn", "cumulative"
        scs.note("go-back-N: modest loss tolerance still wants repair")

    # --- transmission control ----------------------------------------------
    seg = _segment_size(network, quant, recovery)
    rate_pps: Optional[float] = None
    bdp = max(1, int(network.bottleneck_bps * rtt / (8 * seg))) if network.reachable else 16
    if iso:
        rate_pps = max(1.0, quant.peak_bps / (8 * seg))
        if reliable or recovery in ("gbn", "sr"):
            transmission = "window-rate"
            scs.note("window+rate: paced media with window-bounded recovery")
        else:
            transmission = "rate"
            scs.note(f"rate control at {rate_pps:.0f} PDU/s: isochronous pacing")
    elif qual.transactional:
        transmission = "sliding-window"
        scs.note("small window: request-response traffic")
    else:
        transmission = "sliding-window"
        scs.note(f"sliding window sized to bandwidth-delay product ({bdp} PDUs)")
        if network.congestion > RATE_CONGESTION_THRESHOLD:
            transmission = "window-rate"
            rate_pps = max(1.0, network.bottleneck_bps * (1.0 - network.congestion) / (8 * seg))
            scs.note("added rate control: path congestion above threshold")
    if ack == "none" and transmission in ("sliding-window", "window-rate"):
        # window flow control cannot operate unacknowledged
        if transmission == "window-rate":
            transmission = "rate"
            rate_pps = rate_pps or max(1.0, quant.peak_bps / (8 * seg))
        else:
            transmission, rate_pps = "rate", max(1.0, quant.peak_bps / (8 * seg))
        scs.note("window dropped: no ACK stream to open it")

    # floor of 8 absorbs host-side processing delay not visible in the
    # propagation-based BDP estimate; transactional traffic stays small
    window = min(256, max(8, bdp)) if not qual.transactional else 4

    # --- sequencing ---------------------------------------------------------
    if not qual.ordered:
        sequencing = "none"
        scs.note("unsequenced: application is order-insensitive")
    elif qual.duplicate_sensitive:
        sequencing = "ordered-dedup"
    else:
        sequencing = "ordered"

    # --- jitter --------------------------------------------------------------
    if qual.isochronous and quant.max_jitter is not None:
        jitter = "playout"
        playout = min(0.5, max(2 * quant.max_jitter, rtt * 0.5))
        scs.note(f"playout buffer {playout * 1000:.0f} ms: jitter bound {quant.max_jitter}")
    else:
        jitter = "none"
        playout = 0.0

    # --- buffers & headers ----------------------------------------------------
    buffer = "fixed" if iso else "variable"
    cfg = SessionConfig(
        connection=connection,
        transmission=transmission,
        detection=detection,
        checksum_placement="trailer",
        ack=ack,
        recovery=recovery,
        sequencing=sequencing,
        delivery=delivery,
        jitter=jitter,
        buffer=buffer,
        window=window,
        rate_pps=rate_pps,
        segment_size=seg,
        fec_k=4,
        fec_r=2 if recovery == "fec-rs" else 1,
        playout_delay=playout if jitter == "playout" else 0.08,
        rto_initial=max(0.2, 3 * rtt) if network.reachable else 0.5,
        rto_min=max(0.1, rtt),
        priority=qual.priority,
        compact_headers=True,
        binding=binding,
    )
    scs.config = cfg
    return scs


def _segment_size(network: NetworkState, quant, recovery: str = "none") -> int:
    """User bytes per PDU: fill the path MTU, but never exceed the app's
    natural message size by much (fragmenting tiny messages is wasteful).

    FEC configurations reserve headroom for the PARITY PDU's per-shard
    group metadata so repair units also fit the MTU."""
    from repro.mechanisms.fec import META_BYTES_PER_SHARD
    from repro.tko.interpreter import NETWORK_HEADER_BYTES

    mtu = network.mtu if network.reachable and network.mtu else 1500
    headroom = 32
    if recovery.startswith("fec"):
        headroom += META_BYTES_PER_SHARD * 4  # default group size
    path_max = max(64, mtu - NETWORK_HEADER_BYTES - headroom)
    if quant.message_size <= path_max:
        return max(64, quant.message_size)
    return path_max
