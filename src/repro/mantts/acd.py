"""The ADAPTIVE Communication Descriptor — Table 2, verbatim.

An ACD is what the application hands the MANTTS-API when initiating a
connection.  Its five parameter groups map one-to-one onto Table 2's rows:

==========================  ============================================
Table 2 parameter            field
==========================  ============================================
Remote Session Participant   ``participants`` (≥1 addresses; >1 ⇒
Address(es)                  multicast service)
Quantitative QoS             ``quantitative``
Qualitative QoS              ``qualitative``
Transport Service            ``tsa`` — <condition, action> pairs evaluated
Adjustment (TSA)             at run time by the policy engine
Transport Measurement        ``tmc`` — per-session metric collection
Component (TMC)              requests handed to UNITES
==========================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mantts.qos import QualitativeQoS, QuantitativeQoS


@dataclass(frozen=True)
class TSARule:
    """One <condition, action> Transport Service Adjustment pair.

    ``condition`` is an expression over monitored metrics, e.g.
    ``("congestion", ">", 0.5)``; ``action`` names what to do when it
    becomes true — either an SCS adjustment (mechanism switch or parameter
    retune), a TSC change, or an application notification (the paper's
    three reconfiguration outcomes, §4.1.2).
    """

    metric: str
    op: str                     #: one of > < >= <=
    threshold: float
    action: str                 #: "adjust-scs" | "adjust-tsc" | "notify"
    #: for adjust-scs: SessionConfig field overrides to apply
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: free-form tag passed to the application on "notify"
    tag: str = ""

    def __post_init__(self) -> None:
        if self.op not in (">", "<", ">=", "<="):
            raise ValueError(f"unsupported comparison {self.op!r}")
        if self.action not in ("adjust-scs", "adjust-tsc", "notify"):
            raise ValueError(f"unsupported action {self.action!r}")

    def holds(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == "<":
            return value < self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value <= self.threshold


@dataclass(frozen=True)
class TMC:
    """Transport Measurement Component: what UNITES should collect."""

    #: metric names to sample (from repro.unites.metrics catalogue)
    metrics: Tuple[str, ...] = ()
    #: sampling period, seconds
    sampling_interval: float = 0.5
    #: presentation format hint ("table" | "csv" | "series")
    presentation: str = "table"

    def __post_init__(self) -> None:
        if self.sampling_interval <= 0:
            raise ValueError("sampling interval must be positive")
        if self.presentation not in ("table", "csv", "series"):
            raise ValueError(f"unknown presentation {self.presentation!r}")


@dataclass(frozen=True)
class ACD:
    """One application communication descriptor (Table 2)."""

    participants: Tuple[str, ...]
    quantitative: QuantitativeQoS = field(default_factory=QuantitativeQoS)
    qualitative: QualitativeQoS = field(default_factory=QualitativeQoS)
    tsa: Tuple[TSARule, ...] = ()
    tmc: Optional[TMC] = None
    #: destination application port on the participants
    service_port: int = 7000
    #: optional explicit TSC name, short-circuiting Stage I (§4.1.1:
    #: "applications may explicitly select a TSC")
    explicit_tsc: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValueError("an ACD names at least one remote participant")
        if self.service_port <= 0:
            raise ValueError("service port must be positive")

    @property
    def is_multicast(self) -> bool:
        """Multicast *service* is requested by naming >1 participants;
        the qualitative ``multicast`` flag only records the capability
        (Table 1's column), not a demand for group delivery right now."""
        return len(self.participants) > 1
