"""Transport Service Classes — Table 1 encoded (Stage I of Figure 2).

A TSC "embodies a set of related policy decisions that satisfy the
application's QoS requests".  Four classes, per the paper's taxonomy:

* **interactive isochronous** — voice conversation, tele-conferencing;
* **distributional isochronous** — full-motion video (compressed & raw);
* **real-time non-isochronous** — manufacturing control;
* **non-real-time non-isochronous** — file transfer, TELNET, OLTP,
  remote file service.

``APP_PROFILES`` reproduces Table 1's nine rows verbatim (ordinal columns
as :class:`~repro.mantts.qos.Sensitivity`); each row can also be rendered
as a concrete (quantitative, qualitative) QoS pair for the workload
generators and the Table 1 regeneration bench.

``select_tsc`` is Stage I: ACD → TSC.  Applications may short-circuit it
by naming a TSC explicitly (§4.1.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS, Sensitivity

S = Sensitivity


class TSC(enum.Enum):
    """The paper's four transport service classes."""

    INTERACTIVE_ISOCHRONOUS = "interactive-isochronous"
    DISTRIBUTIONAL_ISOCHRONOUS = "distributional-isochronous"
    REALTIME_NONISOCHRONOUS = "real-time-non-isochronous"
    NONREALTIME_NONISOCHRONOUS = "non-real-time-non-isochronous"


#: ordinal throughput ratings → representative bits/second
THROUGHPUT_BPS: Dict[Sensitivity, float] = {
    S.NONE: 9_600.0,        # "very-low"
    S.LOW: 64_000.0,
    S.MODERATE: 1_500_000.0,
    S.HIGH: 10_000_000.0,
    S.VERY_HIGH: 100_000_000.0,
}


@dataclass(frozen=True)
class AppProfile:
    """One row of Table 1."""

    app: str
    tsc: TSC
    avg_throughput: Sensitivity
    burst_factor: Sensitivity
    delay_sensitivity: Sensitivity
    jitter_sensitivity: Sensitivity
    order_sensitivity: Sensitivity
    loss_tolerance: Sensitivity
    priority_delivery: bool
    multicast: bool
    #: request-response interaction pattern (OLTP, RPC file service)
    transactional: bool = False
    #: typical application message size, bytes (drives segment sizing and
    #: the pacing-rate computation in Stage II)
    message_bytes: int = 1024

    def quantitative(self) -> QuantitativeQoS:
        """Concrete numeric QoS representative of this row."""
        avg = THROUGHPUT_BPS[self.avg_throughput]
        burst = {S.NONE: 1.0, S.LOW: 1.2, S.MODERATE: 2.0, S.HIGH: 5.0, S.VERY_HIGH: 8.0}[
            self.burst_factor
        ]
        latency = {S.NONE: None, S.LOW: None, S.MODERATE: 0.5, S.HIGH: 0.15, S.VERY_HIGH: 0.05}[
            self.delay_sensitivity
        ]
        jitter = {S.NONE: None, S.LOW: None, S.MODERATE: 0.05, S.HIGH: 0.02, S.VERY_HIGH: 0.01}[
            self.jitter_sensitivity
        ]
        loss = {S.NONE: 0.0, S.LOW: 0.001, S.MODERATE: 0.01, S.HIGH: 0.05, S.VERY_HIGH: 0.1}[
            self.loss_tolerance
        ]
        return QuantitativeQoS(
            avg_throughput_bps=avg,
            peak_throughput_bps=avg * burst,
            max_latency=latency,
            max_jitter=jitter,
            loss_tolerance=loss,
            message_size=self.message_bytes,
        )

    def qualitative(self) -> QualitativeQoS:
        iso = self.tsc in (TSC.INTERACTIVE_ISOCHRONOUS, TSC.DISTRIBUTIONAL_ISOCHRONOUS)
        return QualitativeQoS(
            ordered=self.order_sensitivity >= S.MODERATE,
            duplicate_sensitive=self.order_sensitivity >= S.MODERATE,
            isochronous=iso,
            real_time=self.tsc is TSC.REALTIME_NONISOCHRONOUS,
            priority=self.priority_delivery,
            multicast=self.multicast,
            transactional=self.transactional,
        )


#: Table 1, row for row (ratings transcribed from the paper)
APP_PROFILES: Dict[str, AppProfile] = {
    p.app: p
    for p in (
        AppProfile(
            "voice-conversation", TSC.INTERACTIVE_ISOCHRONOUS,
            S.LOW, S.LOW, S.HIGH, S.HIGH, S.LOW, S.HIGH,
            priority_delivery=False, multicast=False, message_bytes=160,
        ),
        AppProfile(
            "tele-conferencing", TSC.INTERACTIVE_ISOCHRONOUS,
            S.MODERATE, S.MODERATE, S.HIGH, S.HIGH, S.LOW, S.MODERATE,
            priority_delivery=True, multicast=True, message_bytes=512,
        ),
        AppProfile(
            "full-motion-video-compressed", TSC.DISTRIBUTIONAL_ISOCHRONOUS,
            S.HIGH, S.HIGH, S.HIGH, S.MODERATE, S.LOW, S.MODERATE,
            priority_delivery=True, multicast=True, message_bytes=6000,
        ),
        AppProfile(
            "full-motion-video-raw", TSC.DISTRIBUTIONAL_ISOCHRONOUS,
            S.VERY_HIGH, S.LOW, S.HIGH, S.HIGH, S.LOW, S.MODERATE,
            priority_delivery=True, multicast=True, message_bytes=16000,
        ),
        AppProfile(
            "manufacturing-control", TSC.REALTIME_NONISOCHRONOUS,
            S.MODERATE, S.MODERATE, S.HIGH, S.MODERATE, S.HIGH, S.LOW,
            priority_delivery=True, multicast=True, message_bytes=256,
        ),
        AppProfile(
            "file-transfer", TSC.NONREALTIME_NONISOCHRONOUS,
            S.MODERATE, S.LOW, S.LOW, S.NONE, S.HIGH, S.NONE,
            priority_delivery=False, multicast=False, message_bytes=8192,
        ),
        AppProfile(
            "telnet", TSC.NONREALTIME_NONISOCHRONOUS,
            S.NONE, S.HIGH, S.HIGH, S.LOW, S.HIGH, S.NONE,
            priority_delivery=True, multicast=False, message_bytes=8,
        ),
        AppProfile(
            "oltp", TSC.NONREALTIME_NONISOCHRONOUS,
            S.LOW, S.HIGH, S.HIGH, S.LOW, S.MODERATE, S.NONE,
            priority_delivery=False, multicast=False, transactional=True, message_bytes=128,
        ),
        AppProfile(
            "remote-file-service", TSC.NONREALTIME_NONISOCHRONOUS,
            S.LOW, S.HIGH, S.HIGH, S.LOW, S.MODERATE, S.NONE,
            priority_delivery=False, multicast=True, transactional=True, message_bytes=512,
        ),
    )
}

_TSC_BY_NAME = {t.value: t for t in TSC}


def select_tsc(acd: ACD) -> TSC:
    """Stage I: map an ACD's QoS onto a transport service class.

    An explicitly named TSC wins (it "simplif[ies] the subsequent ...
    configuration process"); otherwise classification follows the taxonomy
    axes: isochronous? → interactive vs distributional by throughput;
    non-isochronous → real-time vs not.
    """
    if acd.explicit_tsc is not None:
        tsc = _TSC_BY_NAME.get(acd.explicit_tsc)
        if tsc is None:
            raise ValueError(f"unknown TSC {acd.explicit_tsc!r}")
        return tsc
    qual = acd.qualitative
    quant = acd.quantitative
    if qual.isochronous:
        # interactive = conversational, bidirectional, lower rate;
        # distributional = one-to-many bulk media delivery
        if quant.avg_throughput_bps >= THROUGHPUT_BPS[S.HIGH] or (
            qual.multicast and not qual.transactional and quant.avg_throughput_bps > THROUGHPUT_BPS[S.MODERATE]
        ):
            return TSC.DISTRIBUTIONAL_ISOCHRONOUS
        return TSC.INTERACTIVE_ISOCHRONOUS
    if qual.real_time:
        return TSC.REALTIME_NONISOCHRONOUS
    return TSC.NONREALTIME_NONISOCHRONOUS
