"""Monolithic baseline protocols (§2.2's inadequate incumbents).

The comparators the paper argues against, built *inside* the ADAPTIVE
framework as static templates — demonstrating §4.2.2's note that "static
templates are also used to implement backward compatibility with existing
protocols like TCP":

* :mod:`repro.baselines.tcp_like` — reliable byte stream: 3-way
  handshake, cumulative ACKs, go-back-N, slow-start/AIMD congestion
  control, legacy unaligned headers with a header-resident checksum;
* :mod:`repro.baselines.udp_like` — raw checksummed datagrams;
* :mod:`repro.baselines.tp4_like` — the heavyweight: everything TCP-like
  has, plus conservative timers and small fixed windows; the *overweight*
  configuration of §2.2(B) when pointed at loss-tolerant media.
"""

from repro.baselines.tcp_like import TcpCongestionControl, tcp_like_config
from repro.baselines.udp_like import udp_like_config
from repro.baselines.tp4_like import tp4_like_config

__all__ = [
    "tcp_like_config",
    "TcpCongestionControl",
    "udp_like_config",
    "tp4_like_config",
]
