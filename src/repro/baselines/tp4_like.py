"""TP4-like baseline: the heavyweight OSI transport configuration.

The paper's canonical *overweight* example (§2.2(B)): "a protocol (such
as TP4) provides retransmission support for loss-tolerant, constrained
latency applications such as interactive voice ... the extra mechanisms
required to provide retransmission simply slow down the protocol
processing."  Relative to the TCP-like template this one is even more
conservative: stop-start slow timers, a small fixed window, CRC-grade
checksumming in the header, and full ordered-reliable semantics — always,
regardless of what the application actually needs.
"""

from __future__ import annotations

from repro.tko.config import SessionConfig


def tp4_like_config(binding: str = "static") -> SessionConfig:
    """The heavyweight static template."""
    return SessionConfig(
        connection="explicit-3way",
        transmission="sliding-window",
        detection="crc32",             # strongest (and costliest) detection
        checksum_placement="header",   # computed before transmission starts
        ack="cumulative",
        recovery="gbn",
        sequencing="ordered-dedup",
        delivery="unicast",
        jitter="none",
        buffer="variable",
        window=8,                      # conservative fixed credit
        rto_initial=1.0,               # sluggish timers
        rto_min=0.2,
        compact_headers=False,
        binding=binding,
    )
