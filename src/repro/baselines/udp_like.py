"""UDP-like baseline: unreliable checksummed datagrams.

The *underweight* end of §2.2(B)'s spectrum: no connection setup, no
flow/transmission control, no recovery, no ordering — fine for tolerant
traffic, inadequate the moment an application needs any of the missing
services (reliable multicast being the paper's example).
"""

from __future__ import annotations

from repro.tko.config import SessionConfig


def udp_like_config(binding: str = "static") -> SessionConfig:
    """The datagram static template."""
    return SessionConfig(
        connection="implicit",
        transmission="none",
        detection="checksum",
        checksum_placement="header",
        ack="none",
        recovery="none",
        sequencing="none",
        delivery="unicast",
        jitter="none",
        buffer="variable",
        compact_headers=False,
        binding=binding,
    )
