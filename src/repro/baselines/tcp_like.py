"""TCP-like baseline: reliable byte stream with slow start + AIMD.

Configuration choices mirror 4.3BSD TCP as the paper characterises it
(§2.2(C)): three-way handshake, cumulative acknowledgments, go-back-N
retransmission, *header*-resident checksum in a variable, unaligned
header format (no transmit/checksum overlap, expensive parsing), ordered
duplicate-suppressed delivery.  Congestion control is Jacobson slow
start + additive-increase/multiplicative-decrease, registered as the
``tcp-aimd`` transmission mechanism.
"""

from __future__ import annotations

from repro.mechanisms.base import TransmissionControl
from repro.mechanisms.registry import MECHANISM_REGISTRY
from repro.tko.config import SessionConfig
from repro.tko.pdu import PDU


class TcpCongestionControl(TransmissionControl):
    """Slow start + congestion avoidance over the sliding window."""

    name = "tcp-aimd"
    SEND_COST = 120.0
    RECV_COST = 90.0
    DISPATCH_SEND = 3
    DISPATCH_RECV = 3

    INITIAL_CWND = 2.0

    def __init__(self) -> None:
        super().__init__()
        self.cwnd = self.INITIAL_CWND
        self.ssthresh = 64.0

    # ------------------------------------------------------------------
    def effective_window(self) -> int:
        s = self.session
        peer = s.state.peer_window if s.state.peer_window is not None else s.cfg.window
        return max(1, min(int(self.cwnd), peer, s.cfg.window))

    def can_send(self) -> bool:
        return self.session.state.outstanding_count() < self.effective_window()

    def send_gap(self) -> float:
        return 0.0

    def on_ack(self, pdu: PDU) -> None:
        if pdu.window:
            self.session.state.peer_window = pdu.window
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0              # slow start: exponential
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance: linear

    def on_loss(self) -> None:
        # multiplicative decrease (the paper's "slow start and
        # multiplicative decrease ... used to simulate access control")
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.INITIAL_CWND

    def adopt(self, old: TransmissionControl) -> None:
        if isinstance(old, TcpCongestionControl):
            self.cwnd = old.cwnd
            self.ssthresh = old.ssthresh


MECHANISM_REGISTRY["transmission"]["tcp-aimd"] = TcpCongestionControl


def tcp_like_config(window: int = 64, binding: str = "static") -> SessionConfig:
    """The full TCP-like static template."""
    return SessionConfig(
        connection="explicit-3way",
        transmission="tcp-aimd",
        detection="checksum",
        checksum_placement="header",   # TCP keeps its checksum in the header
        ack="cumulative",
        recovery="gbn",
        sequencing="ordered-dedup",
        delivery="unicast",
        jitter="none",
        buffer="variable",
        window=window,
        compact_headers=False,         # variable options, unaligned fields
        binding=binding,
    )
