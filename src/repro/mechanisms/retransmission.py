"""Retransmission-based error recovery (go-back-N / selective repeat).

These are the two schemes the paper's policy examples switch between
(§3(C)): go-back-N minimises receiver buffering (out-of-order PDUs are
discarded) at the price of redundant retransmission under loss; selective
repeat resends only what was actually lost but requires the receiver to
buffer out-of-order arrivals and the ACK scheme to report them (SACK).

Both use one retransmission timer per session with exponential backoff,
Karn-style RTT sampling (no samples from retransmitted PDUs — enforced in
the session's ACK accounting), and 3-duplicate-ACK fast retransmit.

``adopt`` transfers the unacknowledged-PDU queue across a segue, which is
what makes the on-the-fly GBN ↔ SR switch of experiment E3 loss-free (the
property MSP demonstrated and ADAPTIVE adds policy control over).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.mechanisms.base import ErrorRecovery
from repro.tko.pdu import PDU

#: duplicate-ACK count that triggers fast retransmit
FAST_RETRANSMIT_DUPS = 3


class NoRecovery(ErrorRecovery):
    """Fire and forget — losses are final (datagram / media service)."""

    name = "none"
    SEND_COST = 5.0
    RECV_COST = 5.0
    DISPATCH_SEND = 1
    DISPATCH_RECV = 0
    accept_out_of_order = True
    retransmits = False

    def on_send(self, pdu: PDU) -> Iterable[PDU]:
        return ()

    def on_ack(self, pdu: PDU, from_host: str = "") -> None:
        return None

    def on_receive_repair(self, pdu: PDU) -> List[PDU]:
        return []


class _RetransmitBase(ErrorRecovery):
    """Shared timer/backoff/fast-retransmit machinery."""

    retransmits = True
    SEND_COST = 90.0
    RECV_COST = 40.0
    DISPATCH_SEND = 2
    DISPATCH_RECV = 2

    def __init__(self) -> None:
        super().__init__()
        self._timer = None
        self._dup_acks = 0
        #: highest cumulative ACK seen per acknowledging host — multicast
        #: members each acknowledge every sequence, so duplicates must be
        #: judged against the *sender's* history with that host
        self._last_ack_by_host: dict = {}
        self._max_ack_seen = -1
        # fast-recovery latch: at most one fast retransmit per loss event;
        # re-armed only when the cumulative ACK advances again
        self._in_recovery = False

    def bind(self, session) -> None:
        super().bind(session)
        self._timer = session.timers.timer(self._on_timeout, interval=session.cfg.rto_initial)

    def unbind(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        super().unbind()

    def adopt(self, old: ErrorRecovery) -> None:
        # The outstanding queue lives in shared session state, so nothing
        # must be copied — but the replacement must keep the loss clock
        # running if there is still unacknowledged data.
        if self.session.state.outstanding_count() > 0:
            self._arm()
        if isinstance(old, _RetransmitBase):
            self._dup_acks = old._dup_acks
            self._last_ack_by_host = old._last_ack_by_host
            self._max_ack_seen = old._max_ack_seen

    # ------------------------------------------------------------------
    def _arm(self) -> None:
        self._timer.schedule(self.session.rtt.rto)

    def on_send(self, pdu: PDU) -> Iterable[PDU]:
        if not self._timer.armed:
            self._arm()
        return ()

    def on_ack(self, pdu: PDU, from_host: str = "") -> None:
        s = self.session
        if pdu.ack is None:
            return
        last_from_host = self._last_ack_by_host.get(from_host, -1)
        if pdu.ack > last_from_host:
            # progress from this host's point of view: never a duplicate
            self._last_ack_by_host[from_host] = pdu.ack
            if pdu.ack > self._max_ack_seen:
                self._max_ack_seen = pdu.ack
                self._dup_acks = 0
                self._in_recovery = False
            # restart the loss clock for remaining data
            if s.state.outstanding_count() > 0:
                self._arm()
            else:
                self._timer.cancel()
        elif (
            pdu.ack == last_from_host
            and s.state.outstanding_count() > 0
            and not self._in_recovery
        ):
            self._dup_acks += 1
            if self._dup_acks == FAST_RETRANSMIT_DUPS:
                self._dup_acks = 0
                self._in_recovery = True
                s.stats.fast_retransmits += 1
                self._fast_retransmit()

    def outstanding_count(self) -> int:
        return self.session.state.outstanding_count()

    # -- scheme-specific -------------------------------------------------
    def _on_timeout(self) -> None:
        raise NotImplementedError

    def _fast_retransmit(self) -> None:
        raise NotImplementedError

    def on_receive_repair(self, pdu: PDU) -> List[PDU]:
        return []  # retransmission schemes carry no PARITY units

    def _give_up_check(self) -> bool:
        s = self.session
        for entry in s.state.outstanding.values():
            if entry.retries > s.cfg.max_retries:
                s.abort("retransmission limit exceeded")
                return True
        return False


class GoBackN(_RetransmitBase):
    """Retransmit *everything* outstanding on loss; receiver keeps no
    out-of-order state."""

    name = "gbn"
    accept_out_of_order = False

    def _on_timeout(self) -> None:
        s = self.session
        if s.state.outstanding_count() == 0:
            return
        s.rtt.backoff()
        s.context.transmission.on_loss()
        for entry in list(s.state.outstanding.values()):
            s.retransmit_entry(entry)
        if self._give_up_check():
            return
        self._arm()

    def _fast_retransmit(self) -> None:
        # Go-back-N semantics: resume from the first unacknowledged PDU.
        s = self.session
        s.context.transmission.on_loss()
        for entry in list(s.state.outstanding.values()):
            s.retransmit_entry(entry)
        self._give_up_check()


class SelectiveRepeat(_RetransmitBase):
    """Retransmit only PDUs not covered by cumulative ACK or SACK."""

    name = "sr"
    accept_out_of_order = True
    SEND_COST = 100.0
    RECV_COST = 50.0

    def _unrepaired_entries(self):
        return [e for e in self.session.state.outstanding.values() if not e.sacked]

    def _on_timeout(self) -> None:
        s = self.session
        missing = self._unrepaired_entries()
        if not missing:
            if s.state.outstanding_count() > 0:
                self._arm()
            return
        s.rtt.backoff()
        s.context.transmission.on_loss()
        for entry in missing:
            s.retransmit_entry(entry)
        if self._give_up_check():
            return
        self._arm()

    def _fast_retransmit(self) -> None:
        missing = self._unrepaired_entries()
        if missing:
            self.session.context.transmission.on_loss()
            self.session.retransmit_entry(missing[0])
            self._give_up_check()
