"""Transmission control mechanisms (Figure 5's ``Transmission_Management``).

The hierarchy covers the design space the paper's policies select from:

* ``NoTransmissionControl`` — release immediately (datagram service);
* ``StopAndWait`` — at most one PDU outstanding (TELNET-grade);
* ``SlidingWindow`` — classic window flow control, honouring the peer's
  advertisement negotiated at setup (Table 2's "initial window
  advertisements");
* ``RateControl`` — an inter-PDU gap pacing scheme; §4.1.2's example
  reconfiguration ("increase the inter-PDU gap used by the rate control
  mechanism in response to perceived network congestion") is the
  :meth:`RateControl.set_rate` segue target;
* ``WindowRate`` — both constraints at once (the paper's note that
  high-speed virtual-circuit networks want rate *and* window control).
"""

from __future__ import annotations

from typing import Optional

from repro.mechanisms.base import TransmissionControl
from repro.tko.pdu import PDU


class NoTransmissionControl(TransmissionControl):
    """Unconstrained release — the underweight end of the design space."""

    name = "none"
    SEND_COST = 10.0
    RECV_COST = 5.0
    DISPATCH_SEND = 1
    DISPATCH_RECV = 0

    def can_send(self) -> bool:
        return True

    def send_gap(self) -> float:
        return 0.0


class StopAndWait(TransmissionControl):
    """One PDU in flight at a time."""

    name = "stop-and-wait"
    SEND_COST = 40.0
    RECV_COST = 30.0

    def can_send(self) -> bool:
        return self.session.state.outstanding_count() == 0

    def send_gap(self) -> float:
        return 0.0


class SlidingWindow(TransmissionControl):
    """Window-limited release: outstanding < min(own, peer advertisement)."""

    name = "sliding-window"
    SEND_COST = 80.0
    RECV_COST = 60.0
    DISPATCH_SEND = 2
    DISPATCH_RECV = 2

    def effective_window(self) -> int:
        s = self.session
        peer = s.state.peer_window
        own = s.cfg.window
        return min(own, peer) if peer is not None else own

    def can_send(self) -> bool:
        return self.session.state.outstanding_count() < self.effective_window()

    def send_gap(self) -> float:
        return 0.0

    def on_ack(self, pdu: PDU) -> None:
        # Window advertisements ride every ACK.
        if pdu.window:
            self.session.state.peer_window = pdu.window


class RateControl(TransmissionControl):
    """Pacing via an inter-PDU gap; the gap is the segue-adjustable knob."""

    name = "rate"
    SEND_COST = 60.0
    RECV_COST = 10.0

    def __init__(self, rate_pps: Optional[float] = None) -> None:
        super().__init__()
        self._rate = rate_pps
        self._next_slot = 0.0

    def bind(self, session) -> None:
        super().bind(session)
        if self._rate is None:
            self._rate = session.cfg.rate_pps or 1000.0

    @property
    def rate_pps(self) -> float:
        return float(self._rate or 0.0)

    def set_rate(self, rate_pps: float) -> None:
        """Adjust the pacing rate in place (MANTTS' congestion response)."""
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate_pps

    def can_send(self) -> bool:
        return True

    def send_gap(self) -> float:
        now = self.session.now
        return max(0.0, self._next_slot - now)

    def on_send(self, pdu: PDU) -> None:
        now = self.session.now
        gap = 1.0 / float(self._rate)
        self._next_slot = max(now, self._next_slot) + gap

    def adopt(self, old: TransmissionControl) -> None:
        if isinstance(old, RateControl):
            self._next_slot = old._next_slot


class WindowRate(TransmissionControl):
    """Sliding window *and* rate pacing combined."""

    name = "window-rate"
    SEND_COST = 110.0
    RECV_COST = 60.0
    DISPATCH_SEND = 3
    DISPATCH_RECV = 2

    def __init__(self, rate_pps: Optional[float] = None) -> None:
        super().__init__()
        self._window = SlidingWindow()
        self._rate = RateControl(rate_pps)

    def bind(self, session) -> None:
        super().bind(session)
        self._window.bind(session)
        self._rate.bind(session)

    @property
    def rate_pps(self) -> float:
        return self._rate.rate_pps

    def set_rate(self, rate_pps: float) -> None:
        self._rate.set_rate(rate_pps)

    def can_send(self) -> bool:
        return self._window.can_send()

    def send_gap(self) -> float:
        return self._rate.send_gap()

    def on_send(self, pdu: PDU) -> None:
        self._rate.on_send(pdu)

    def on_ack(self, pdu: PDU) -> None:
        self._window.on_ack(pdu)

    def adopt(self, old: TransmissionControl) -> None:
        self._rate.adopt(old if isinstance(old, RateControl) else getattr(old, "_rate", old))
