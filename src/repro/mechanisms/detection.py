"""Error detection mechanisms (the detection third of Figure 5's
``Reliability_Management`` composite).

Placement matters as much as algorithm (paper §2.2(C) fn. 2): with the
check value in the *trailer*, the sender can compute it while earlier bytes
are already being clocked out, so the per-byte cost leaves the transmission
critical path (modelled by ``overlaps_tx``); with the check in the
*header* (TCP/TP4 layout), transmission cannot start until the whole PDU
has been summed.

Detection strength is modelled honestly: the 16-bit Internet checksum
misses a corrupted PDU with probability 2^-16; CRC-32 is treated as
never missing at simulated volumes; ``none`` delivers damaged payloads to
the application — the right choice only when the application is loss-/
error-tolerant (Table 1's voice row).
"""

from __future__ import annotations

import zlib

from repro.mechanisms.base import ErrorDetection, StageSpec
from repro.tko.pdu import PDU

#: miss probability of a 16-bit ones-complement checksum
CHECKSUM16_MISS_P = 1.0 / 65536.0


class NoDetection(ErrorDetection):
    """Accept everything — corrupted payloads reach the application."""

    name = "none"
    SEND_COST = 0.0
    RECV_COST = 0.0
    DISPATCH_SEND = 0
    DISPATCH_RECV = 1
    overlaps_tx = True  # nothing to compute at all

    def attach(self, pdu: PDU) -> None:
        pdu.checksum = None
        pdu.checksum_placement = None

    def verify(self, pdu: PDU, corrupted: bool) -> bool:
        if corrupted:
            self.session.stats.corrupted_delivered += 1
        return True


class _ChecksumBase(ErrorDetection):
    """Shared placement/cost plumbing for real detection schemes."""

    #: instructions per payload byte (software sum loop)
    PER_BYTE = 1.0
    #: residual miss probability given a corrupted PDU
    MISS_P = 0.0

    def __init__(self, placement: str = "trailer") -> None:
        super().__init__()
        if placement not in ("header", "trailer"):
            raise ValueError(f"bad checksum placement {placement!r}")
        self.placement = placement

    @property
    def overlaps_tx(self) -> bool:  # type: ignore[override]
        return self.placement == "trailer"

    def send_cost(self, pdu: PDU) -> float:
        return self.SEND_COST + self.PER_BYTE * pdu.data_size

    def recv_cost(self, pdu: PDU) -> float:
        return self.RECV_COST + self.PER_BYTE * pdu.data_size

    def compile_stage(self) -> StageSpec:
        return StageSpec(
            slot=self.category,
            name=self.name,
            send_fixed=self.SEND_COST,
            send_per_byte=self.PER_BYTE,
            recv_fixed=self.RECV_COST,
            recv_per_byte=self.PER_BYTE,
            dispatch_send=self.DISPATCH_SEND,
            dispatch_recv=self.DISPATCH_RECV,
            overlaps_tx=self.placement == "trailer",
        )

    def _compute(self, pdu: PDU) -> int:
        raise NotImplementedError

    def attach(self, pdu: PDU) -> None:
        pdu.checksum = self._compute(pdu)
        pdu.checksum_placement = self.placement

    def verify(self, pdu: PDU, corrupted: bool) -> bool:
        if not corrupted:
            return True
        if self.MISS_P > 0.0 and self.session.rng.random() < self.MISS_P:
            self.session.stats.undetected_errors += 1
            self.session.stats.corrupted_delivered += 1
            return True
        self.session.stats.checksum_rejections += 1
        return False


class InternetChecksum(_ChecksumBase):
    """RFC-1071 16-bit ones-complement checksum."""

    name = "checksum"
    SEND_COST = 40.0
    RECV_COST = 40.0
    PER_BYTE = 1.0
    MISS_P = CHECKSUM16_MISS_P

    def _compute(self, pdu: PDU) -> int:
        return pdu.message.checksum16() if pdu.message is not None else 0


class Crc32(_ChecksumBase):
    """CRC-32 — stronger and costlier than the Internet checksum."""

    name = "crc32"
    SEND_COST = 40.0
    RECV_COST = 40.0
    PER_BYTE = 2.0
    MISS_P = 0.0

    def _compute(self, pdu: PDU) -> int:
        if pdu.message is None:
            return 0
        crc = 0
        for seg in pdu.message.segments_view():
            crc = zlib.crc32(seg, crc)
        return crc & 0xFFFFFFFF
