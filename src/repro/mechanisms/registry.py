"""Mechanism registry: name → concrete class, per slot.

The synthesizer's Stage III lookup table — the code realisation of the
"protocol mechanisms repository" of Figure 1.  ``build_mechanism``
instantiates a slot's concrete mechanism from a
:class:`~repro.tko.config.SessionConfig`, passing whatever constructor
parameters that mechanism family takes from the config.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.mechanisms.acknowledgment import CumulativeAck, DelayedAck, NoAck, SelectiveAck
from repro.mechanisms.base import Mechanism
from repro.mechanisms.buffer_mgmt import FixedBuffers, VariableBuffers
from repro.mechanisms.connection import Explicit2Way, Explicit3Way, ImplicitConnection
from repro.mechanisms.delivery import MulticastDelivery, UnicastDelivery
from repro.mechanisms.detection import Crc32, InternetChecksum, NoDetection
from repro.mechanisms.fec import FecRS, FecXor
from repro.mechanisms.jitter import NoJitterControl, PlayoutBuffer
from repro.mechanisms.retransmission import GoBackN, NoRecovery, SelectiveRepeat
from repro.mechanisms.sequencing import Ordered, OrderedDedup, Unsequenced
from repro.mechanisms.transmission import (
    NoTransmissionControl,
    RateControl,
    SlidingWindow,
    StopAndWait,
    WindowRate,
)

MECHANISM_REGISTRY: Dict[str, Dict[str, Type[Mechanism]]] = {
    "connection": {
        "implicit": ImplicitConnection,
        "explicit-2way": Explicit2Way,
        "explicit-3way": Explicit3Way,
    },
    "transmission": {
        "none": NoTransmissionControl,
        "stop-and-wait": StopAndWait,
        "sliding-window": SlidingWindow,
        "rate": RateControl,
        "window-rate": WindowRate,
    },
    "detection": {
        "none": NoDetection,
        "checksum": InternetChecksum,
        "crc32": Crc32,
    },
    "ack": {
        "none": NoAck,
        "cumulative": CumulativeAck,
        "delayed": DelayedAck,
        "selective": SelectiveAck,
    },
    "recovery": {
        "none": NoRecovery,
        "gbn": GoBackN,
        "sr": SelectiveRepeat,
        "fec-xor": FecXor,
        "fec-rs": FecRS,
    },
    "sequencing": {
        "none": Unsequenced,
        "ordered": Ordered,
        "ordered-dedup": OrderedDedup,
    },
    "delivery": {
        "unicast": UnicastDelivery,
        "multicast": MulticastDelivery,
    },
    "jitter": {
        "none": NoJitterControl,
        "playout": PlayoutBuffer,
    },
    "buffer": {
        "fixed": FixedBuffers,
        "variable": VariableBuffers,
    },
}


def build_mechanism(
    slot: str,
    cfg,
    group: Optional[str] = None,
    members: Optional[list] = None,
) -> Mechanism:
    """Instantiate the concrete mechanism ``cfg`` selects for ``slot``."""
    table = MECHANISM_REGISTRY.get(slot)
    if table is None:
        raise KeyError(f"unknown mechanism slot {slot!r}")
    choice = getattr(cfg, slot if slot != "detection" else "detection")
    cls = table.get(choice)
    if cls is None:
        raise KeyError(f"no {slot} mechanism named {choice!r}")
    # family-specific constructor parameters
    if slot == "detection" and cls is not NoDetection:
        return cls(placement=cfg.checksum_placement)  # type: ignore[call-arg]
    if slot == "transmission" and cls in (RateControl, WindowRate):
        return cls(rate_pps=cfg.rate_pps)  # type: ignore[call-arg]
    if slot == "recovery" and cls in (FecXor, FecRS):
        return cls(k=cfg.fec_k, r=cfg.fec_r)  # type: ignore[call-arg]
    if slot == "jitter" and cls is PlayoutBuffer:
        return cls(playout_delay=cfg.playout_delay)  # type: ignore[call-arg]
    if slot == "delivery" and cls is MulticastDelivery:
        if group is None:
            raise ValueError("multicast delivery requires a group address")
        return cls(group=group, members=members or [])  # type: ignore[call-arg]
    return cls()


def mechanism_plan(slot: str, cfg) -> tuple:
    """(class, ctor_kwargs) for ``slot`` — the cacheable synthesis recipe.

    Unlike :func:`build_mechanism` this carries only kwargs derivable from
    the config *signature*: numeric parameters (pacing rate, FEC k/r,
    playout depth) are excluded from the signature, so two sessions sharing
    a template may differ on them — those mechanisms default their ctor
    args to ``None`` and resolve the live value from ``session.cfg`` at
    bind time.  Multicast delivery (group-addressed, member-stateful) is
    never cacheable.
    """
    table = MECHANISM_REGISTRY.get(slot)
    if table is None:
        raise KeyError(f"unknown mechanism slot {slot!r}")
    choice = getattr(cfg, slot)
    cls = table.get(choice)
    if cls is None:
        raise KeyError(f"no {slot} mechanism named {choice!r}")
    if slot == "delivery" and cls is MulticastDelivery:
        raise ValueError("multicast delivery cannot be planned for caching")
    if slot == "detection" and cls is not NoDetection:
        return cls, {"placement": cfg.checksum_placement}
    return cls, {}
