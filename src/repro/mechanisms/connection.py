"""Connection management mechanisms (Figure 5's ``Connection_Management``).

Three concrete schemes, matching §4.1.1's negotiation alternatives:

* ``ImplicitConnection`` — no handshake; configuration information rides
  the first DATA PDU ("piggybacked along with the application's first
  PDU"), so a request-response exchange pays zero setup round trips;
* ``Explicit2Way`` — SYN / SYN-ACK: one RTT of setup, the paper's
  "2-way handshake" option for explicit management;
* ``Explicit3Way`` — SYN / SYN-ACK / CONFIRM: full three-way agreement
  (the TCP-style conservative default used by the TP4-like baseline).

Handshake PDUs (SYN family) are control units and travel on the
out-of-band control path (Figure 3): they carry ``PRIO_CONTROL`` so
signalling "does not interpret packets containing control information" on
the data fast path.  Teardown PDUs (FIN / FIN-ACK) deliberately travel
*in-band* instead — a priority-class FIN would overtake the session's
final data in switch queues and close the peer before delivery completes.
"""

from __future__ import annotations

from typing import Optional

from repro.mechanisms.base import ConnectionManagement
from repro.tko.pdu import PDU, PduType

#: handshake retransmission ceiling before the open attempt is abandoned
MAX_HANDSHAKE_RETRIES = 5


class ImplicitConnection(ConnectionManagement):
    """Zero-handshake establishment with config piggybacked on first DATA."""

    name = "implicit"
    SEND_COST = 15.0
    RECV_COST = 15.0
    DISPATCH_SEND = 1
    DISPATCH_RECV = 1

    def __init__(self) -> None:
        super().__init__()
        self._connected = True
        self._first_data_sent = False
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._connected and not self._closed

    def active_open(self) -> None:
        # Nothing on the wire; the session may transmit immediately.
        if self.session is not None:
            self.session.notify_connected()

    def passive_open(self, pdu: PDU) -> None:
        # Creation of the session *is* the establishment.
        if self.session is not None:
            self.session.notify_connected()

    def piggyback_config(self) -> Optional[dict]:
        if self._first_data_sent:
            return None
        self._first_data_sent = True
        assert self.session is not None
        # the full configuration rides the first DATA PDU so the responder
        # can synthesize a matching session with zero setup round trips
        return self.session.cfg.to_dict()

    def handle_control(self, pdu: PDU) -> bool:
        if pdu.ptype is PduType.FIN:
            self._closed = True
            self.session.emit_pdu(self.session.make_pdu(PduType.FIN_ACK))
            self.session.notify_closed()
            return True
        if pdu.ptype is PduType.FIN_ACK:
            self._closed = True
            self.session.notify_closed()
            return True
        return False

    def close(self) -> None:
        # Implicit close is still announced so the peer can free resources,
        # but the closer does not wait for the FIN-ACK (non-blocking).
        if not self._closed:
            self._closed = True
            self.session.emit_pdu(self.session.make_pdu(PduType.FIN))
            self.session.notify_closed()

    def adopt(self, old: "ConnectionManagement") -> None:
        self._connected = old.connected
        self._first_data_sent = True


class _ExplicitBase(ConnectionManagement):
    """Shared SYN machinery for the explicit handshake variants."""

    SEND_COST = 30.0
    RECV_COST = 30.0

    def __init__(self) -> None:
        super().__init__()
        self.state = "closed"  # closed/syn-sent/syn-rcvd/open/fin-wait/closing
        self._retries = 0
        self._syn_timer = None

    @property
    def connected(self) -> bool:
        return self.state == "open"

    def piggyback_config(self) -> Optional[dict]:
        return None  # config was exchanged during the handshake

    # -- active side ----------------------------------------------------
    def active_open(self) -> None:
        assert self.session is not None
        self.state = "syn-sent"
        self._send_syn()

    def _send_syn(self) -> None:
        s = self.session
        syn = s.make_pdu(PduType.SYN)
        syn.options["cfg"] = s.cfg.to_dict()
        syn.options["window"] = s.cfg.window
        s.emit_control(syn)
        if self._syn_timer is None:
            self._syn_timer = s.timers.timer(self._syn_timeout, interval=s.cfg.rto_initial)
        self._syn_timer.schedule(s.cfg.rto_initial * (2 ** self._retries))

    def _syn_timeout(self) -> None:
        if self.state not in ("syn-sent", "syn-rcvd"):
            return
        self._retries += 1
        if self._retries > MAX_HANDSHAKE_RETRIES:
            self.state = "closed"
            self.session.notify_open_failed("handshake timeout")
            return
        self.session.stats.control_retransmissions += 1
        self._send_syn()

    # -- teardown ---------------------------------------------------------
    def close(self) -> None:
        s = self.session
        if self.state != "open":
            self.state = "closed"
            s.notify_closed()
            return
        self.state = "fin-wait"
        s.emit_pdu(s.make_pdu(PduType.FIN))

    def _handle_common_control(self, pdu: PDU) -> bool:
        s = self.session
        if pdu.ptype is PduType.FIN:
            self.state = "closed"
            s.emit_pdu(s.make_pdu(PduType.FIN_ACK))
            s.notify_closed()
            return True
        if pdu.ptype is PduType.FIN_ACK:
            if self.state == "fin-wait":
                self.state = "closed"
                s.notify_closed()
            return True
        return False

    def adopt(self, old: "ConnectionManagement") -> None:
        # A live session never re-handshakes; inherit openness.
        if old.connected:
            self.state = "open"


class Explicit2Way(_ExplicitBase):
    """SYN / SYN-ACK establishment (one round trip)."""

    name = "explicit-2way"
    DISPATCH_SEND = 1
    DISPATCH_RECV = 2

    def passive_open(self, pdu: PDU) -> None:
        s = self.session
        self.state = "open"
        s.state.peer_window = pdu.options.get("window", s.state.peer_window)
        s.emit_control(s.make_pdu(PduType.SYN_ACK))
        s.notify_connected()

    def handle_control(self, pdu: PDU) -> bool:
        s = self.session
        if pdu.ptype is PduType.SYN:
            # duplicate SYN (our SYN-ACK was lost): re-acknowledge
            s.emit_control(s.make_pdu(PduType.SYN_ACK))
            return True
        if pdu.ptype is PduType.SYN_ACK:
            if self.state == "syn-sent":
                self.state = "open"
                if self._syn_timer is not None:
                    self._syn_timer.cancel()
                s.notify_connected()
            return True
        return self._handle_common_control(pdu)


class Explicit3Way(_ExplicitBase):
    """SYN / SYN-ACK / CONFIRM establishment (TCP-style three-way)."""

    name = "explicit-3way"
    DISPATCH_SEND = 1
    DISPATCH_RECV = 3

    def passive_open(self, pdu: PDU) -> None:
        s = self.session
        self.state = "syn-rcvd"
        s.state.peer_window = pdu.options.get("window", s.state.peer_window)
        s.emit_control(s.make_pdu(PduType.SYN_ACK))
        # Guard against a lost CONFIRM with the SYN retransmit timer.
        if self._syn_timer is None:
            self._syn_timer = s.timers.timer(self._synack_timeout, interval=s.cfg.rto_initial)
        self._syn_timer.schedule(s.cfg.rto_initial)

    def _synack_timeout(self) -> None:
        if self.state != "syn-rcvd":
            return
        self._retries += 1
        if self._retries > MAX_HANDSHAKE_RETRIES:
            self.state = "closed"
            self.session.notify_open_failed("handshake timeout (syn-rcvd)")
            return
        self.session.stats.control_retransmissions += 1
        self.session.emit_control(self.session.make_pdu(PduType.SYN_ACK))
        self._syn_timer.schedule(self.session.cfg.rto_initial * (2 ** self._retries))

    def handle_control(self, pdu: PDU) -> bool:
        s = self.session
        if pdu.ptype is PduType.SYN:
            if self.state == "syn-rcvd":
                s.emit_control(s.make_pdu(PduType.SYN_ACK))
            return True
        if pdu.ptype is PduType.SYN_ACK:
            if self.state == "syn-sent":
                self.state = "open"
                if self._syn_timer is not None:
                    self._syn_timer.cancel()
                s.emit_control(s.make_pdu(PduType.CONFIRM))
                s.notify_connected()
            else:
                # duplicate SYN-ACK: re-confirm so the passive side opens
                s.emit_control(s.make_pdu(PduType.CONFIRM))
            return True
        if pdu.ptype is PduType.CONFIRM:
            if self.state == "syn-rcvd":
                self.state = "open"
                if self._syn_timer is not None:
                    self._syn_timer.cancel()
                s.notify_connected()
            return True
        return self._handle_common_control(pdu)
