"""Delivery mechanisms: unicast vs multicast addressing and ACK aggregation.

Multicast is the capability whose *absence* makes TCP an underweight
configuration for teleconferencing (§2.2(B)), and whose membership dynamics
("participants join and leave the conversation", §2.1(B)) drive run-time
reconfiguration.  ``MulticastDelivery`` addresses frames to a group; the
network replicates them once per tree edge; reliable operation aggregates
per-member ACKs — a sequence number is complete only when *every* current
member has acknowledged it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.mechanisms.base import Delivery, StageSpec
from repro.tko.pdu import PDU


class UnicastDelivery(Delivery):
    """Single fixed peer."""

    name = "unicast"
    SEND_COST = 10.0
    RECV_COST = 10.0
    DISPATCH_SEND = 1
    DISPATCH_RECV = 1

    def destinations(self) -> List[str]:
        return [self.session.remote_host]

    def frame_dst(self) -> str:
        return self.session.remote_host

    def ack_complete(self, seq: int, from_host: str) -> bool:
        return True


class MulticastDelivery(Delivery):
    """Group-addressed frames with all-member ACK aggregation."""

    name = "multicast"
    SEND_COST = 40.0
    RECV_COST = 20.0
    DISPATCH_SEND = 2
    DISPATCH_RECV = 2

    def __init__(self, group: str, members: List[str]) -> None:
        super().__init__()
        self.group = group
        self._members: Set[str] = set(members)
        #: sequence number from which each member participates: a late
        #: joiner is only responsible for data sent after it joined —
        #: otherwise its silence on pre-join sequences would jam the
        #: sender's window forever
        self._join_seq: Dict[str, int] = {m: 0 for m in members}
        self._acked: Dict[int, Set[str]] = {}

    def destinations(self) -> List[str]:
        return sorted(self._members)

    def frame_dst(self) -> str:
        return self.group

    def _required(self, seq: int) -> Set[str]:
        return {m for m in self._members if self._join_seq.get(m, 0) <= seq}

    def ack_complete(self, seq: int, from_host: str) -> bool:
        if from_host not in self._members:
            return False  # stale ACK from a departed member
        got = self._acked.setdefault(seq, set())
        got.add(from_host)
        if got >= self._required(seq):
            self._acked.pop(seq, None)
            return True
        return False

    def membership_changed(self, members: List[str]) -> None:
        """Install a new member set; completion is re-evaluated.

        New members are responsible only from the next sequence number
        onward; departure can *complete* sequences that were only waiting
        on the leaver — so the session rechecks its outstanding queue.
        """
        new = set(members)
        joined = new - self._members
        if self.session is not None:
            next_seq = self.session.state.snd_nxt
        else:
            next_seq = 0
        for m in joined:
            self._join_seq[m] = next_seq
        for m in self._members - new:
            self._join_seq.pop(m, None)
        self._members = new
        if self.session is not None:
            # the member count feeds this stage's compiled send cost
            self.session.repipeline("delivery")
            self.session.recheck_acks()

    def pending_complete(self, seq: int) -> bool:
        """Would ``seq`` be complete under the current membership?"""
        got = self._acked.get(seq, set())
        return got >= self._required(seq)

    def send_cost(self, pdu: PDU) -> float:
        # ACK-state bookkeeping grows with the member count.
        return self.SEND_COST + 5.0 * len(self._members)

    def compile_stage(self) -> StageSpec:
        return StageSpec(
            slot=self.category,
            name=self.name,
            send_fixed=self.SEND_COST + 5.0 * len(self._members),
            send_per_byte=0.0,
            recv_fixed=self.RECV_COST,
            recv_per_byte=0.0,
            dispatch_send=self.DISPATCH_SEND,
            dispatch_recv=self.DISPATCH_RECV,
            overlaps_tx=False,
        )

    def adopt(self, old: Delivery) -> None:
        if isinstance(old, MulticastDelivery):
            self._acked = old._acked
            self._members = old._members
