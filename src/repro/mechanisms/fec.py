"""Forward-error-correction recovery mechanisms.

The paper's second policy example (§3(C)): switch reliability from
"retransmission-based" to "forward error correction-based" when the
round-trip delay crosses a threshold (terrestrial → satellite route), since
a retransmission costs a full — now enormous — RTT while FEC repairs loss
with zero additional latency at the price of constant bandwidth overhead.

* ``FecXor`` — one XOR parity PDU per ``k`` data PDUs: repairs any single
  loss per group (overhead 1/k);
* ``FecRS`` — ``r`` Reed-Solomon parity PDUs per ``k`` data PDUs over
  GF(256) (:mod:`repro.mechanisms.gf256`): repairs up to ``r`` losses per
  group (overhead r/k).

Group metadata (member sequence numbers, fragment identities, original
sizes) rides the PARITY PDU as ``aux_size`` header bytes so the receiver
can rebuild the *exact* missing DATA PDUs, not just their payload bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.mechanisms import gf256
from repro.mechanisms.base import ErrorRecovery, StageSpec
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType

#: per-shard metadata bytes on a PARITY PDU (seq, msg, frag, size fields)
META_BYTES_PER_SHARD = 8
#: receiver keeps at most this many incomplete groups before purging oldest
GROUP_HORIZON = 64


def _payload_bytes(pdu: PDU) -> bytes:
    msg = pdu.message
    if msg is None:
        return b""
    return b"".join(bytes(s) for s in msg.segments_view())


class _FecBase(ErrorRecovery):
    """Shared grouping/reconstruction machinery for the FEC family."""

    retransmits = False
    accept_out_of_order = True
    DISPATCH_SEND = 2
    DISPATCH_RECV = 2
    #: the sender group holds PDU references until parity is emitted, so a
    #: free-listed PDU could be recycled out from under the encoder
    POOL_SAFE = False

    #: instructions per payload byte spent encoding/decoding
    PER_BYTE = 0.5

    def __init__(self, k: Optional[int] = None, r: Optional[int] = None) -> None:
        super().__init__()
        self._k = k
        self._r = r
        # sender group under construction
        self._group: List[PDU] = []
        self._group_base: Optional[int] = None
        # receiver state: group_base -> {"data": {...}, "parity": {...}, ...}
        self._rx: Dict[int, dict] = {}
        self._rx_order: List[int] = []

    def bind(self, session) -> None:
        super().bind(session)
        if self._k is None:
            self._k = session.cfg.fec_k
        if self._r is None:
            self._r = self.default_r(session.cfg.fec_r)

    @staticmethod
    def default_r(cfg_r: int) -> int:
        return cfg_r

    @property
    def k(self) -> int:
        return int(self._k or 1)

    @property
    def r(self) -> int:
        return int(self._r or 1)

    def send_cost(self, pdu: PDU) -> float:
        return self.SEND_COST + self.PER_BYTE * pdu.data_size

    def recv_cost(self, pdu: PDU) -> float:
        return self.RECV_COST + self.PER_BYTE * pdu.data_size

    def compile_stage(self) -> StageSpec:
        return StageSpec(
            slot=self.category,
            name=self.name,
            send_fixed=self.SEND_COST,
            send_per_byte=self.PER_BYTE,
            recv_fixed=self.RECV_COST,
            recv_per_byte=self.PER_BYTE,
            dispatch_send=self.DISPATCH_SEND,
            dispatch_recv=self.DISPATCH_RECV,
            overlaps_tx=False,
        )

    # ------------------------------------------------------------------
    # sender
    # ------------------------------------------------------------------
    def on_send(self, pdu: PDU) -> Iterable[PDU]:
        if self._group_base is None:
            self._group_base = pdu.seq
        pdu.options["fg"] = self._group_base
        self._group.append(pdu)
        if len(self._group) >= self.k:
            return self._emit_parity()
        return ()

    def flush(self) -> Iterable[PDU]:
        """Close out a partial group (called at session close)."""
        if self._group:
            return self._emit_parity()
        return ()

    def _emit_parity(self) -> List[PDU]:
        group = self._group
        base = self._group_base
        self._group = []
        self._group_base = None
        shards = [_payload_bytes(p) for p in group]
        metas = [
            {
                "seq": p.seq,
                "msg_id": p.msg_id,
                "frag_index": p.frag_index,
                "frag_count": p.frag_count,
                "size": len(s),
            }
            for p, s in zip(group, shards)
        ]
        parity_payloads = self.encode(shards)
        out: List[PDU] = []
        s = self.session
        for i, payload in enumerate(parity_payloads):
            parity = s.make_pdu(PduType.PARITY)
            parity.message = TKOMessage(payload, meter=s.copy_meter)
            parity.options.update(
                {"fg": base, "k": len(group), "r": len(parity_payloads), "index": i, "metas": metas}
            )
            parity.aux_size = META_BYTES_PER_SHARD * len(group)
            s.stats.parity_sent += 1
            out.append(parity)
        return out

    # ------------------------------------------------------------------
    # receiver
    # ------------------------------------------------------------------
    def _rx_group(self, base: int) -> dict:
        g = self._rx.get(base)
        if g is None:
            g = {"data": {}, "parity": {}, "metas": None, "done": False}
            self._rx[base] = g
            self._rx_order.append(base)
            while len(self._rx_order) > GROUP_HORIZON:
                victim = self._rx_order.pop(0)
                self._rx.pop(victim, None)
        return g

    def note_data_received(self, pdu: PDU) -> None:
        base = pdu.options.get("fg")
        if base is None:
            return
        g = self._rx_group(base)
        if not g["done"]:
            g["data"][pdu.seq] = _payload_bytes(pdu)

    def on_receive_repair(self, pdu: PDU) -> List[PDU]:
        base = pdu.options.get("fg")
        if base is None:
            return []
        g = self._rx_group(base)
        if g["done"]:
            return []
        g["parity"][pdu.options["index"]] = _payload_bytes(pdu)
        g["metas"] = pdu.options["metas"]
        g["k"] = pdu.options["k"]
        g["r"] = pdu.options["r"]
        return self._try_reconstruct(base)

    def repair_opportunity(self, pdu: PDU) -> List[PDU]:
        """Called after a DATA arrival: a late shard may complete a group."""
        base = pdu.options.get("fg")
        if base is None or base not in self._rx:
            return []
        g = self._rx[base]
        if g["done"] or g["metas"] is None:
            return []
        return self._try_reconstruct(base)

    def _try_reconstruct(self, base: int) -> List[PDU]:
        g = self._rx[base]
        metas = g["metas"]
        k = g["k"]
        seqs = [m["seq"] for m in metas]
        have = {s: g["data"][s] for s in seqs if s in g["data"]}
        missing = [m for m in metas if m["seq"] not in have]
        if not missing:
            g["done"] = True
            return []
        recovered = self.decode(k, g.get("r", self.r), metas, have, g["parity"])
        if recovered is None:
            return []
        g["done"] = True
        s = self.session
        out: List[PDU] = []
        for meta in missing:
            idx = seqs.index(meta["seq"])
            payload = recovered[idx][: meta["size"]]
            rebuilt = PDU(
                PduType.DATA,
                s.conn_id,
                seq=meta["seq"],
                msg_id=meta["msg_id"],
                frag_index=meta["frag_index"],
                frag_count=meta["frag_count"],
                options={"fg": base, "fec_reconstructed": True},
                message=TKOMessage(payload, meter=s.copy_meter),
                compact=s.cfg.compact_headers,
            )
            s.stats.fec_recoveries += 1
            out.append(rebuilt)
        return out

    # -- code-specific ----------------------------------------------------
    def encode(self, shards: List[bytes]) -> List[bytes]:
        raise NotImplementedError

    def decode(
        self,
        k: int,
        r: int,
        metas: List[dict],
        have: Dict[int, bytes],
        parity: Dict[int, bytes],
    ) -> Optional[List[bytes]]:
        """Return all k shards in group order, or None if unrecoverable."""
        raise NotImplementedError

    # FEC never retransmits; ACK processing is generic only.
    def on_ack(self, pdu: PDU, from_host: str = "") -> None:
        return None


class FecXor(_FecBase):
    """Single-parity XOR groups: repairs one loss per k."""

    name = "fec-xor"
    SEND_COST = 70.0
    RECV_COST = 30.0
    PER_BYTE = 0.5

    @staticmethod
    def default_r(cfg_r: int) -> int:
        return 1  # XOR supports exactly one parity shard

    def encode(self, shards: List[bytes]) -> List[bytes]:
        return [gf256.xor_encode(shards)]

    def decode(self, k, r, metas, have, parity):
        missing = [m for m in metas if m["seq"] not in have]
        if len(missing) != 1 or 0 not in parity:
            return None
        length = max(m["size"] for m in metas)
        rec = gf256.xor_recover(list(have.values()), parity[0], length)
        out: List[Optional[bytes]] = []
        for m in metas:
            out.append(have.get(m["seq"], rec))
        return out  # type: ignore[return-value]


class FecRS(_FecBase):
    """Reed-Solomon groups: repairs up to r losses per k."""

    name = "fec-rs"
    SEND_COST = 100.0
    RECV_COST = 60.0
    PER_BYTE = 2.0

    def encode(self, shards: List[bytes]) -> List[bytes]:
        return gf256.rs_encode(shards, self.r)

    def decode(self, k, r, metas, have, parity):
        if len(have) + len(parity) < k:
            return None
        length = max(m["size"] for m in metas)
        seqs = [m["seq"] for m in metas]
        data = {seqs.index(s): b for s, b in have.items()}
        try:
            return gf256.rs_decode(k, r, length, data, dict(parity))
        except (ValueError, np.linalg.LinAlgError):
            return None
