"""Buffer-management representation mechanisms.

Table 2 lists "fixed-size vs. variable-sized buffer management" among the
negotiable *representations*.  The mechanism selects the host pool
discipline and contributes the corresponding per-PDU allocation cost:
fixed slabs allocate cheaply but waste internal space (reducing effective
receive capacity); variable allocation is exact but costs more
instructions per PDU.
"""

from __future__ import annotations

from typing import ClassVar

from repro.mechanisms.base import Mechanism
from repro.tko.pdu import PDU


class BufferManagement(Mechanism):
    """Root of the buffer-representation hierarchy."""

    category = "buffer"
    discipline: ClassVar[str] = "variable"

    def alloc_cost(self) -> float:
        """Instructions per buffer allocation under this discipline."""
        raise NotImplementedError


class FixedBuffers(BufferManagement):
    """Slab pools: cheap allocation, internal fragmentation."""

    name = "fixed"
    discipline = "fixed"
    SEND_COST = 20.0
    RECV_COST = 20.0

    def alloc_cost(self) -> float:
        return float(self.session.host.cpu.costs.buffer_alloc_fixed)


class VariableBuffers(BufferManagement):
    """Exact-fit pools: no waste, costlier allocation path."""

    name = "variable"
    discipline = "variable"
    SEND_COST = 30.0
    RECV_COST = 30.0

    def alloc_cost(self) -> float:
        return float(self.session.host.cpu.costs.buffer_alloc_variable)
