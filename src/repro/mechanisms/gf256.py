"""GF(2^8) arithmetic and a systematic Cauchy-matrix erasure code.

Substrate for the forward-error-correction recovery mechanisms.  The field
is GF(256) with the AES/Rijndael-compatible primitive polynomial 0x11d.
Encoding and decoding are vectorised with numpy via a precomputed 256×256
multiplication table (64 KiB), so per-byte work is table lookups — the
"implement selected functions efficiently" guidance of §3(B)(4) applied to
the simulator itself.

The code is *systematic*: the k data shards are transmitted unmodified and
r parity shards are linear combinations ``parity_i = Σ_j C[i,j]·data_j``
with C a Cauchy matrix, every square submatrix of which is nonsingular —
hence ANY k of the k+r shards reconstruct the data (the property the
property-based tests in ``tests/mechanisms/test_gf256.py`` hammer).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

_PRIM = 0x11D

# --- log/antilog tables ------------------------------------------------
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIM
_EXP[255:510] = _EXP[:255]  # wraparound so exp lookups skip a modulo

# --- full multiplication table (vectorised mul is MUL_TABLE[a][b]) -----
_ia = np.arange(256).reshape(-1, 1)
_ib = np.arange(256).reshape(1, -1)
_logsum = _LOG[_ia] + _LOG[_ib]
MUL_TABLE = _EXP[_logsum % 255].astype(np.uint8)
MUL_TABLE[0, :] = 0
MUL_TABLE[:, 0] = 0


def gf_mul(a: int, b: int) -> int:
    """Scalar product in GF(256)."""
    return int(MUL_TABLE[a, b])


def gf_inv(a: int) -> int:
    """Multiplicative inverse (a != 0)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_mul_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``vec`` by ``scalar`` (table lookup)."""
    return MUL_TABLE[scalar][vec]


def gf_matmul(m: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """(rows×k GF matrix) @ (k×L byte matrix) → rows×L byte matrix."""
    rows, k = m.shape
    out = np.zeros((rows, shards.shape[1]), dtype=np.uint8)
    for i in range(rows):
        acc = out[i]
        for j in range(k):
            c = int(m[i, j])
            if c:
                acc ^= MUL_TABLE[c][shards[j]]
    return out


def gf_solve(m: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``m @ x = rhs`` over GF(256) by Gauss-Jordan elimination.

    ``m`` is k×k, ``rhs`` is k×L; both are consumed (copied internally).
    """
    k = m.shape[0]
    a = m.astype(np.uint8).copy()
    b = rhs.astype(np.uint8).copy()
    for col in range(k):
        # pivot
        pivot = None
        for row in range(col, k):
            if a[row, col]:
                pivot = row
                break
        if pivot is None:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            b[[col, pivot]] = b[[pivot, col]]
        inv = gf_inv(int(a[col, col]))
        a[col] = MUL_TABLE[inv][a[col]]
        b[col] = MUL_TABLE[inv][b[col]]
        for row in range(k):
            if row != col and a[row, col]:
                c = int(a[row, col])
                a[row] ^= MUL_TABLE[c][a[col]]
                b[row] ^= MUL_TABLE[c][b[col]]
    return b


def cauchy_matrix(r: int, k: int) -> np.ndarray:
    """An r×k Cauchy matrix over GF(256): C[i,j] = 1/(x_i ⊕ y_j).

    ``x_i = k + i`` and ``y_j = j`` are disjoint, so every entry is defined
    and every square submatrix is invertible.  Requires ``k + r <= 256``.
    """
    if k + r > 256:
        raise ValueError("GF(256) erasure code supports at most 256 shards")
    c = np.zeros((r, k), dtype=np.uint8)
    for i in range(r):
        for j in range(k):
            c[i, j] = gf_inv((k + i) ^ j)
    return c


# ----------------------------------------------------------------------
# shard-level erasure code API
# ----------------------------------------------------------------------
def _pad_stack(shards: Sequence[bytes], length: int) -> np.ndarray:
    out = np.zeros((len(shards), length), dtype=np.uint8)
    for i, s in enumerate(shards):
        if len(s) > length:
            raise ValueError("shard longer than declared length")
        out[i, : len(s)] = np.frombuffer(s, dtype=np.uint8)
    return out


def rs_encode(data_shards: Sequence[bytes], r: int) -> List[bytes]:
    """Produce ``r`` parity shards for ``k`` data shards.

    Shards may have unequal lengths; they are zero-padded to the longest
    for coding (the decoder is told original lengths out of band — in the
    transport this metadata rides the PARITY PDU header).
    """
    if not data_shards:
        raise ValueError("need at least one data shard")
    if r < 1:
        raise ValueError("need at least one parity shard")
    k = len(data_shards)
    length = max(len(s) for s in data_shards)
    if length == 0:
        return [b"" for _ in range(r)]
    stack = _pad_stack(data_shards, length)
    parity = gf_matmul(cauchy_matrix(r, k), stack)
    return [parity[i].tobytes() for i in range(r)]


def rs_decode(
    k: int,
    r: int,
    shard_length: int,
    data: Dict[int, bytes],
    parity: Dict[int, bytes],
) -> List[bytes]:
    """Reconstruct all k data shards from any ≥k available shards.

    ``data`` maps data-shard index (0..k-1) to its bytes; ``parity`` maps
    parity index (0..r-1).  Raises ``ValueError`` when fewer than k shards
    are available.  Returned shards are padded to ``shard_length``; callers
    trim to original sizes.
    """
    if len(data) + len(parity) < k:
        raise ValueError(
            f"unrecoverable: have {len(data)}+{len(parity)} shards, need {k}"
        )
    if len(data) == k:
        return [
            (data[j] + b"\x00" * (shard_length - len(data[j])))
            for j in range(k)
        ]
    c = cauchy_matrix(r, k)
    rows: List[np.ndarray] = []
    values: List[bytes] = []
    # prefer data shards (identity rows keep the system well-conditioned)
    for j in sorted(data):
        e = np.zeros(k, dtype=np.uint8)
        e[j] = 1
        rows.append(e)
        values.append(data[j])
        if len(rows) == k:
            break
    for i in sorted(parity):
        if len(rows) == k:
            break
        rows.append(c[i])
        values.append(parity[i])
    m = np.stack(rows)
    rhs = _pad_stack(values, shard_length)
    solved = gf_solve(m, rhs)
    return [solved[j].tobytes() for j in range(k)]


def xor_encode(data_shards: Sequence[bytes]) -> bytes:
    """Single XOR parity shard over (padded) data shards."""
    length = max((len(s) for s in data_shards), default=0)
    if length == 0:
        return b""
    stack = _pad_stack(data_shards, length)
    acc = np.zeros(length, dtype=np.uint8)
    for row in stack:
        acc ^= row
    return acc.tobytes()


def xor_recover(present: Sequence[bytes], parity: bytes, length: int) -> bytes:
    """Recover the single missing shard from the others plus XOR parity."""
    acc = np.frombuffer(parity, dtype=np.uint8).copy()
    if len(acc) < length:
        acc = np.concatenate([acc, np.zeros(length - len(acc), dtype=np.uint8)])
    for s in present:
        arr = np.frombuffer(s, dtype=np.uint8)
        acc[: len(arr)] ^= arr
    return acc[:length].tobytes()
