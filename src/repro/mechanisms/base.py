"""Abstract base classes rooting the mechanism hierarchies (Figure 5).

Every mechanism:

* is **bound** to exactly one session (giving it access to shared session
  state, timers, and the host CPU cost table);
* declares its **instruction costs** on the send and receive paths, which
  the session interpreter sums into the per-PDU CPU charge;
* supports **segue** (§4.2.2): ``new.adopt(old)`` transfers whatever state
  must survive a run-time mechanism swap (e.g. the retransmission queue
  when switching go-back-N → selective repeat "without loss of data").

The base class also counts how many dynamically-dispatched calls a PDU
makes through each mechanism (``DISPATCH_SEND`` / ``DISPATCH_RECV``); the
interpreter multiplies these by the binding style's indirection factor to
model the customization trade-off the paper takes from Synthesis/SELF.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable, List, Optional

from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.pdu import PDU
    from repro.tko.session import TKOSession


@dataclass(frozen=True, slots=True)
class StageSpec:
    """The compiled form of one mechanism: its per-PDU cost contribution.

    ``Mechanism.compile_stage`` produces one of these at synthesis (and
    again for only the affected slot on segue).  The pipeline compiler
    folds the fixed parts into closed-form charges so the data path never
    calls ``send_cost``/``recv_cost`` per PDU — the Synthesis/SELF move of
    §4.2.2: pay for flexibility at (re)configuration time, not per packet.
    """

    slot: str
    name: str
    send_fixed: float
    send_per_byte: float
    recv_fixed: float
    recv_per_byte: float
    dispatch_send: int
    dispatch_recv: int
    overlaps_tx: bool


class Mechanism(abc.ABC):
    """Common behaviour for all session mechanisms."""

    #: mechanism slot this class plugs into (one of TKOContext.SLOTS)
    category: ClassVar[str] = ""
    #: concrete mechanism name as it appears in a SessionConfig
    name: ClassVar[str] = ""
    #: fixed instruction cost contributed to each sent / received PDU
    SEND_COST: ClassVar[float] = 0.0
    RECV_COST: ClassVar[float] = 0.0
    #: dynamically-dispatched calls this mechanism makes per PDU
    DISPATCH_SEND: ClassVar[int] = 1
    DISPATCH_RECV: ClassVar[int] = 1
    #: False when the mechanism keeps references to in-flight PDUs beyond
    #: the sender's retransmission queue (e.g. FEC groups) — the session
    #: then refuses to hand it free-listed PDUs that may be recycled.
    POOL_SAFE: ClassVar[bool] = True

    def __init__(self) -> None:
        self.session: Optional["TKOSession"] = None

    # ------------------------------------------------------------------
    def bind(self, session: "TKOSession") -> None:
        """Attach to the owning session; called once by the synthesizer."""
        self.session = session

    def unbind(self) -> None:
        """Detach (cancel timers, drop references); called before segue-out."""
        self.session = None

    def adopt(self, old: "Mechanism") -> None:
        """Take over state from the mechanism being replaced.

        The default is a no-op; hierarchies whose members carry protocol
        state (recovery queues, pacing debts, handshake progress) override
        this so a segue is loss-free.
        """

    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # UNITES-X hooks — callers guard with ``if TELEMETRY.enabled:`` on
    # hot paths; both are no-ops while telemetry is disabled.
    # ------------------------------------------------------------------
    def count_invoke(self, op: str) -> None:
        """Count one invocation of operation ``op`` on this mechanism."""
        if _TELEMETRY.enabled:
            _TELEMETRY.metrics.counter(
                "mechanism_invocations_total",
                labels={"mechanism": self.name, "category": self.category, "op": op},
                help="per-mechanism operation invocations").inc()

    def invoke_span(self, op: str):
        """A ``mechanism:<name>.<op>`` span (NULL_SPAN when disabled)."""
        return _TELEMETRY.span(f"mechanism:{self.name}.{op}", "mechanism")

    # ------------------------------------------------------------------
    def compile_stage(self) -> StageSpec:
        """Flatten this (bound, parameterised) mechanism into a StageSpec.

        The default covers every mechanism whose costs are the class-level
        constants; subclasses with size- or membership-dependent costs
        (checksums, FEC, multicast delivery) override to expose their
        per-byte coefficient or instance-dependent fixed part.
        """
        return StageSpec(
            slot=self.category,
            name=self.name,
            send_fixed=self.SEND_COST,
            send_per_byte=0.0,
            recv_fixed=self.RECV_COST,
            recv_per_byte=0.0,
            dispatch_send=self.DISPATCH_SEND,
            dispatch_recv=self.DISPATCH_RECV,
            overlaps_tx=bool(getattr(self, "overlaps_tx", False)),
        )

    # ------------------------------------------------------------------
    def send_cost(self, pdu: "PDU") -> float:
        """Instructions this mechanism adds to transmitting ``pdu``."""
        return self.SEND_COST

    def recv_cost(self, pdu: "PDU") -> float:
        """Instructions this mechanism adds to receiving ``pdu``."""
        return self.RECV_COST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.category}:{self.name})>"


# ----------------------------------------------------------------------
# hierarchy roots
# ----------------------------------------------------------------------
class ConnectionManagement(Mechanism):
    """Root: establishing, maintaining, and terminating associations."""

    category = "connection"

    @abc.abstractmethod
    def active_open(self) -> None:
        """Client side: begin establishing (may complete immediately)."""

    @abc.abstractmethod
    def passive_open(self, pdu: "PDU") -> None:
        """Server side: react to the peer's opening PDU."""

    @abc.abstractmethod
    def handle_control(self, pdu: "PDU") -> bool:
        """Process a control PDU; return True when consumed."""

    @abc.abstractmethod
    def close(self) -> None:
        """Begin (graceful) termination."""

    @property
    @abc.abstractmethod
    def connected(self) -> bool:
        """True once data transfer is permitted."""

    @abc.abstractmethod
    def piggyback_config(self) -> Optional[dict]:
        """Config options to ride on the first DATA PDU (implicit setup)."""


class TransmissionControl(Mechanism):
    """Root: when queued PDUs may enter the network (window / rate / both)."""

    category = "transmission"

    @abc.abstractmethod
    def can_send(self) -> bool:
        """May one more PDU be released right now (window permitting)?"""

    @abc.abstractmethod
    def send_gap(self) -> float:
        """Seconds until the pacing allows the next release (0 = now)."""

    def on_send(self, pdu: "PDU") -> None:
        """Hook: a DATA PDU was released to the network."""

    def on_ack(self, pdu: "PDU") -> None:
        """Hook: an acknowledgment arrived (window may have opened)."""

    def on_loss(self) -> None:
        """Hook: loss was inferred (baselines use this for AIMD)."""


class ErrorDetection(Mechanism):
    """Root: detecting corrupted PDUs (checksum family + placement)."""

    category = "detection"

    #: True when send-side computation can overlap transmission (trailer)
    overlaps_tx: ClassVar[bool] = False

    @abc.abstractmethod
    def attach(self, pdu: "PDU") -> None:
        """Compute and store the check value on an outgoing PDU."""

    @abc.abstractmethod
    def verify(self, pdu: "PDU", corrupted: bool) -> bool:
        """Return True to accept the PDU.

        ``corrupted`` is the channel's ground truth; a detection scheme may
        miss (bounded by its strength) and a ``none`` scheme accepts
        everything — delivering damaged data to the application, which is a
        legitimate configuration for loss-tolerant media (§2.2(B)).
        """


class Acknowledgment(Mechanism):
    """Root: receiver-side acknowledgment generation policy."""

    category = "ack"

    @abc.abstractmethod
    def on_data(self, pdu: "PDU") -> None:
        """A DATA PDU was accepted; decide whether/what to acknowledge."""

    def on_gap(self, pdu: "PDU") -> None:
        """An out-of-order DATA PDU exposed a gap (dup-ACK opportunity)."""

    def flush(self) -> None:
        """Emit any withheld acknowledgment immediately (delayed ACKs)."""


class ErrorRecovery(Mechanism):
    """Root: repairing loss — retransmission schemes and FEC."""

    category = "recovery"

    #: receiver buffers out-of-order PDUs (selective repeat) or not (GBN)
    accept_out_of_order: ClassVar[bool] = True
    #: whether this scheme retransmits at all (FEC/none do not)
    retransmits: ClassVar[bool] = False

    @abc.abstractmethod
    def on_send(self, pdu: "PDU") -> Iterable["PDU"]:
        """Sender hook: note a DATA PDU entering the network.

        Returns any *extra* PDUs to transmit right after it (FEC parity).
        """

    @abc.abstractmethod
    def on_ack(self, pdu: "PDU", from_host: str = "") -> None:
        """Sender hook: acknowledgment processing (release state).

        ``from_host`` identifies the acknowledging endpoint — required to
        count duplicate ACKs correctly under multicast, where every member
        acknowledges every sequence number.
        """

    @abc.abstractmethod
    def on_receive_repair(self, pdu: "PDU") -> List["PDU"]:
        """Receiver hook for PARITY PDUs: returns reconstructed DATA PDUs."""

    def note_data_received(self, pdu: "PDU") -> None:
        """Receiver hook: a DATA PDU arrived (FEC group bookkeeping)."""

    def outstanding_count(self) -> int:
        """Unacknowledged DATA PDUs held for possible retransmission."""
        return 0


class Delivery(Mechanism):
    """Root: unicast vs multicast addressing and ACK aggregation."""

    category = "delivery"

    @abc.abstractmethod
    def destinations(self) -> List[str]:
        """Current remote endpoint(s)."""

    @abc.abstractmethod
    def frame_dst(self) -> str:
        """Address placed on outgoing frames (host or group address)."""

    @abc.abstractmethod
    def ack_complete(self, seq: int, from_host: str) -> bool:
        """Record an ACK for ``seq`` from ``from_host``; True when every
        destination has acknowledged it (multicast ACK aggregation)."""

    def membership_changed(self, members: List[str]) -> None:
        """Group membership update (participants joining/leaving, §2.1(B))."""


class JitterControl(Mechanism):
    """Root: smoothing delivery-time variance before the application."""

    category = "jitter"

    @abc.abstractmethod
    def release_delay(self, pdu: "PDU") -> float:
        """Seconds to hold the (complete) message before app delivery."""
