"""Protocol mechanism repository (paper Figure 5).

Each module holds one inheritance hierarchy rooted at an abstract base
class in :mod:`repro.mechanisms.base`.  Concrete subclasses "specialize
basic session mechanisms" and are composed by the TKO synthesizer into a
session's dispatch table; all of them support *segue* — run-time
replacement with state handoff — which is what makes ADAPTIVE sessions
reconfigurable without loss of data (§4.2.2, and the MSP comparison in
§2.3).
"""

from repro.mechanisms.base import (
    Acknowledgment,
    ConnectionManagement,
    Delivery,
    ErrorDetection,
    ErrorRecovery,
    JitterControl,
    Mechanism,
    TransmissionControl,
)
from repro.mechanisms.registry import MECHANISM_REGISTRY, build_mechanism

__all__ = [
    "Mechanism",
    "ConnectionManagement",
    "TransmissionControl",
    "ErrorDetection",
    "Acknowledgment",
    "ErrorRecovery",
    "Delivery",
    "JitterControl",
    "MECHANISM_REGISTRY",
    "build_mechanism",
]
