"""Jitter control: playout buffering for isochronous delivery.

Table 1's isochronous service classes (voice, raw video) are *jitter*
sensitive, not latency-optimal: the application wants PDU n delivered at
``send_time(n) + D`` for a constant D, converting network delay variance
into a fixed offset.  ``PlayoutBuffer`` implements the classic fixed-delay
playout point; messages arriving after their deadline are delivered
immediately and counted late (the metric the UNITES jitter analysis
reports).
"""

from __future__ import annotations

from repro.mechanisms.base import JitterControl
from repro.tko.pdu import PDU


class NoJitterControl(JitterControl):
    """Deliver as soon as complete."""

    name = "none"
    SEND_COST = 0.0
    RECV_COST = 0.0
    DISPATCH_SEND = 0
    DISPATCH_RECV = 1

    def release_delay(self, pdu: PDU) -> float:
        return 0.0


class PlayoutBuffer(JitterControl):
    """Fixed-offset playout: release at ``origin_timestamp + playout_delay``."""

    name = "playout"
    SEND_COST = 5.0
    RECV_COST = 40.0
    DISPATCH_RECV = 2

    def __init__(self, playout_delay: float | None = None) -> None:
        super().__init__()
        self._delay = playout_delay

    def bind(self, session) -> None:
        super().bind(session)
        if self._delay is None:
            self._delay = session.cfg.playout_delay

    @property
    def playout_delay(self) -> float:
        return float(self._delay or 0.0)

    def set_delay(self, delay: float) -> None:
        """Re-tune the playout point (an SCS-adjust reconfiguration)."""
        if delay < 0:
            raise ValueError("playout delay cannot be negative")
        self._delay = delay

    def release_delay(self, pdu: PDU) -> float:
        s = self.session
        target = pdu.timestamp + self.playout_delay
        delay = target - s.now
        if delay <= 0:
            s.stats.late_arrivals += 1
            return 0.0
        return delay

    def adopt(self, old: JitterControl) -> None:
        if isinstance(old, PlayoutBuffer):
            self._delay = old._delay
