"""Acknowledgment mechanisms (the reporting third of
``Reliability_Management``).

The receiver-side policy deciding *when* and *what* to acknowledge:

* ``NoAck`` — silence (pure datagram / FEC-only configurations);
* ``CumulativeAck`` — one ACK per accepted DATA PDU carrying the next
  expected sequence number; out-of-order arrivals trigger duplicate ACKs,
  which the sender's fast-retransmit logic counts;
* ``DelayedAck`` — cumulative, but withheld up to ``cfg.ack_delay`` (or
  until a second PDU arrives), halving ACK traffic for streams — the
  "timer settings for delayed acknowledgments" negotiable of Table 2;
* ``SelectiveAck`` — cumulative + a SACK vector of out-of-order sequence
  numbers held in the receive buffer, enabling selective repeat.

ACKs advertise the local free receive window on every emission.
"""

from __future__ import annotations


from repro.mechanisms.base import Acknowledgment
from repro.tko.pdu import PDU, PduType

#: cap on sequence numbers reported per SACK vector (header space)
SACK_LIMIT = 16


class NoAck(Acknowledgment):
    """Never acknowledge."""

    name = "none"
    SEND_COST = 0.0
    RECV_COST = 0.0
    DISPATCH_SEND = 0
    DISPATCH_RECV = 1

    def on_data(self, pdu: PDU) -> None:
        return None


class CumulativeAck(Acknowledgment):
    """Immediate cumulative acknowledgment of every accepted PDU."""

    name = "cumulative"
    SEND_COST = 0.0
    RECV_COST = 50.0

    def _emit_ack(self) -> None:
        s = self.session
        ack = s.make_pdu(PduType.ACK)
        ack.ack = s.recv_window.rcv_nxt
        ack.window = s.advertised_window()
        s.stats.acks_sent += 1
        s.emit_pdu(ack)
        if ack.pooled:
            ack.release()  # creator ref; the wire holds its own

    def on_data(self, pdu: PDU) -> None:
        self._emit_ack()

    def on_gap(self, pdu: PDU) -> None:
        # Duplicate cumulative ACK — the sender's loss signal.
        self._emit_ack()


class DelayedAck(CumulativeAck):
    """Cumulative ACKs withheld up to ``ack_delay`` or every second PDU."""

    name = "delayed"
    RECV_COST = 40.0
    DISPATCH_RECV = 2

    def __init__(self) -> None:
        super().__init__()
        self._pending = 0
        self._timer = None

    def bind(self, session) -> None:
        super().bind(session)
        self._timer = session.timers.timer(self._timeout, interval=session.cfg.ack_delay)

    def unbind(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        super().unbind()

    def on_data(self, pdu: PDU) -> None:
        self._pending += 1
        if self._pending >= 2:
            self.flush()
        elif not self._timer.armed:
            self._timer.schedule(self.session.cfg.ack_delay)

    def on_gap(self, pdu: PDU) -> None:
        # Gaps must be reported immediately; delaying dup-ACKs would defeat
        # fast retransmit.
        self.flush()

    def flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._pending = 0
        self._emit_ack()

    def _timeout(self) -> None:
        if self._pending:
            self._pending = 0
            self._emit_ack()

    def adopt(self, old: Acknowledgment) -> None:
        # Any ACK owed under the old scheme is emitted on switch so the
        # sender never stalls across a segue.
        if isinstance(old, DelayedAck) and old._pending:
            self._pending = old._pending
            self.flush()


class SelectiveAck(CumulativeAck):
    """Cumulative + SACK vector of buffered out-of-order sequences."""

    name = "selective"
    RECV_COST = 70.0
    DISPATCH_RECV = 2

    def _emit_ack(self) -> None:
        s = self.session
        ack = s.make_pdu(PduType.ACK)
        ack.ack = s.recv_window.rcv_nxt
        ack.window = s.advertised_window()
        buffered = sorted(s.recv_window.buffered_seqs())[:SACK_LIMIT]
        ack.sack = tuple(buffered) if buffered else None
        s.stats.acks_sent += 1
        s.emit_pdu(ack)
        if ack.pooled:
            ack.release()

    def recv_cost(self, pdu: PDU) -> float:
        extra = 10.0 * len(pdu.sack) if pdu.sack else 0.0
        return self.RECV_COST + extra
