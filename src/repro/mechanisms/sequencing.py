"""Sequencing mechanisms: ordering and duplicate policy at the receiver.

Table 1 shows "Order Sensitivity" varying from *low* (media streams, where
a late PDU is worse than a missing one) to *high* (file transfer).  Table 2
lists "sequenced/non-sequenced delivery" and "duplicate sensitivity" as
qualitative QoS parameters.  The concrete policies:

* ``Unsequenced`` — deliver in arrival order, duplicates included (voice);
* ``Ordered`` — hold out-of-order messages and release in sequence;
* ``OrderedDedup`` — ordered plus duplicate suppression (the byte-stream
  contract of the TCP-like baseline).

The mechanism object carries *policy*; the receive-window machinery in the
session enforces it, so a segue changes behaviour for all subsequent PDUs
without touching buffered state.
"""

from __future__ import annotations

from typing import ClassVar

from repro.mechanisms.base import Mechanism


class Sequencing(Mechanism):
    """Root of the sequencing hierarchy (policy flags + costs)."""

    category = "sequencing"
    #: hold out-of-order messages until their predecessors arrive
    ordered: ClassVar[bool] = False
    #: drop PDUs whose sequence number was already delivered
    dedup: ClassVar[bool] = False


class Unsequenced(Sequencing):
    """Arrival order, duplicates pass through."""

    name = "none"
    SEND_COST = 5.0
    RECV_COST = 10.0
    DISPATCH_SEND = 0
    DISPATCH_RECV = 1
    ordered = False
    dedup = False


class Ordered(Sequencing):
    """In-order release; duplicates of undelivered data tolerated."""

    name = "ordered"
    SEND_COST = 10.0
    RECV_COST = 60.0
    ordered = True
    dedup = False


class OrderedDedup(Sequencing):
    """In-order release with duplicate suppression."""

    name = "ordered-dedup"
    SEND_COST = 10.0
    RECV_COST = 80.0
    DISPATCH_RECV = 2
    ordered = True
    dedup = True
