"""Command-line entry point: ``python -m repro``.

Small operational conveniences for exploring the reproduction:

* ``python -m repro list``        — catalogue of examples and experiments
* ``python -m repro example X``   — run one example by name
* ``python -m repro table1``      — print Table 1's derived configurations
* ``python -m repro profiles``    — print the network profile catalogue
"""

from __future__ import annotations

import argparse
import pathlib
import runpy
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def cmd_list(_args) -> int:
    print("examples (run with: python -m repro example <name>):")
    if EXAMPLES_DIR.is_dir():
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            doc = path.read_text().split('"""')
            hook = doc[1].strip().splitlines()[0] if len(doc) > 1 else ""
            print(f"  {path.stem:<24} {hook}")
    print("\nexperiments (run with: pytest benchmarks/<file> --benchmark-only -s):")
    if BENCH_DIR.is_dir():
        for path in sorted(BENCH_DIR.glob("test_*.py")):
            doc = path.read_text().split('"""')
            hook = doc[1].strip().splitlines()[0] if len(doc) > 1 else ""
            print(f"  {path.name:<36} {hook}")
    return 0


def cmd_example(args) -> int:
    path = EXAMPLES_DIR / f"{args.name}.py"
    if not path.exists():
        print(f"no example named {args.name!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    runpy.run_path(str(path), run_name="__main__")
    return 0


def cmd_table1(_args) -> int:
    from repro.mantts.acd import ACD
    from repro.mantts.monitor import NetworkState
    from repro.mantts.transform import specify_scs
    from repro.mantts.tsc import APP_PROFILES, select_tsc
    from repro.unites.present import render_table

    path = NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6,
                        0.0, 0.0, 3)
    rows = []
    for app, profile in APP_PROFILES.items():
        acd = ACD(
            participants=("B", "C") if profile.multicast else ("B",),
            quantitative=profile.quantitative(),
            qualitative=profile.qualitative(),
        )
        scs = specify_scs(acd, path, tsc=select_tsc(acd))
        rows.append({"application": app, "tsc": scs.tsc.value,
                     "configuration": scs.config.describe()})
    print(render_table(rows, ["application", "tsc", "configuration"],
                       title="Table 1 — derived session configurations "
                             "(reference 10 Mb/s Ethernet path)"))
    return 0


def cmd_profiles(_args) -> int:
    from repro.netsim.profiles import PROFILES
    from repro.unites.present import render_table

    rows = [
        {
            "profile": p.name,
            "bandwidth_bps": p.bandwidth_bps,
            "delay_s": p.delay,
            "ber": p.ber,
            "mtu": p.mtu,
            "queue": p.queue_limit,
        }
        for p in PROFILES.values()
    ]
    print(render_table(rows, ["profile", "bandwidth_bps", "delay_s", "ber",
                              "mtu", "queue"],
                       title="network profiles (paper §2.1(B) environments)"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ADAPTIVE transport system reproduction (HPDC 1992)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="catalogue of examples and experiments")
    p_ex = sub.add_parser("example", help="run one example by name")
    p_ex.add_argument("name")
    sub.add_parser("table1", help="print Table 1's derived configurations")
    sub.add_parser("profiles", help="print the network profile catalogue")
    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "example": cmd_example,
        "table1": cmd_table1,
        "profiles": cmd_profiles,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
