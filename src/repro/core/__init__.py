"""The integrated ADAPTIVE system façade.

The paper's contribution is the *whole* of Figure 1 — MANTTS + TKO +
UNITES cooperating per host.  This package wires them together:

* :class:`~repro.core.system.AdaptiveSystem` — one call per host gets a
  fully assembled node (Host + TKO protocol + MANTTS entity sharing the
  system-wide UNITES repository and template cache);
* :mod:`repro.core.scenario` — canned experiment scenarios (point-to-point
  transfer, conference, failover path) parameterised by configuration and
  workload, returning the metric dictionaries the benchmark harness and
  EXPERIMENTS.md tables are built from.
"""

from repro.core.system import AdaptiveNode, AdaptiveSystem
from repro.core.scenario import PointToPointScenario, run_point_to_point

__all__ = [
    "AdaptiveSystem",
    "AdaptiveNode",
    "PointToPointScenario",
    "run_point_to_point",
]
