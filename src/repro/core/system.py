"""System assembly: one object per experiment, one node per host."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.host.cpu import CpuCosts
from repro.host.nic import Host
from repro.mantts.api import MANTTS
from repro.mantts.resources import ResourceManager
from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.protocol import TKOProtocol
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import TemplateCache
from repro.unites.collect import UNITES


@dataclass
class AdaptiveNode:
    """One fully assembled ADAPTIVE host."""

    host: Host
    protocol: TKOProtocol
    mantts: MANTTS

    @property
    def name(self) -> str:
        return self.host.name


class AdaptiveSystem:
    """Owns the simulator, network, UNITES, and the per-host nodes."""

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator()
        self.rng = RngStreams(seed)
        self.network: Optional[Network] = None
        self.unites = UNITES(self.sim)
        self.templates = TemplateCache()
        self.nodes: Dict[str, AdaptiveNode] = {}

    # ------------------------------------------------------------------
    def attach_network(self, network: Network) -> Network:
        """Install the (already built) topology; its RNG is unified."""
        if self.network is not None:
            raise RuntimeError("system already has a network")
        self.network = network
        return network

    def node(
        self,
        name: str,
        mips: float = 25.0,
        costs: Optional[CpuCosts] = None,
        buffer_capacity: int = 1 << 20,
        admission_bps: float = 1e9,
        cores: int = 1,
    ) -> AdaptiveNode:
        """Assemble Host + TKO + MANTTS on network node ``name``."""
        if self.network is None:
            raise RuntimeError("attach_network() before creating nodes")
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        host = Host(
            self.sim,
            self.network,
            name,
            mips=mips,
            costs=costs,
            buffer_capacity=buffer_capacity,
            cores=cores,
        )
        synthesizer = TKOSynthesizer(self.templates)
        protocol = TKOProtocol(host, synthesizer)
        mantts = MANTTS(
            host,
            protocol=protocol,
            resources=ResourceManager(host, admission_bps=admission_bps),
        )
        mantts.unites = self.unites
        node = AdaptiveNode(host=host, protocol=protocol, mantts=mantts)
        self.nodes[name] = node
        return node

    # ------------------------------------------------------------------
    def enable_telemetry(self, max_records: Optional[int] = None):
        """Turn on UNITES-X collection, clocked by this system's simulator.

        Returns the global telemetry handle so callers can export from it
        (``write_chrome_trace(system.enable_telemetry(), path)`` reads
        naturally in experiment scripts).
        """
        from repro.unites.obs.telemetry import TELEMETRY

        return TELEMETRY.enable(sim=self.sim, max_records=max_records)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now
