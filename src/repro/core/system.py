"""System assembly: one object per experiment, one node per host."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.host.cpu import CpuCosts
from repro.host.nic import Host
from repro.mantts.api import MANTTS
from repro.mantts.resources import ResourceManager
from repro.netsim.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.tko.protocol import TKOProtocol
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import TemplateCache
from repro.unites.collect import UNITES


@dataclass
class AdaptiveNode:
    """One fully assembled ADAPTIVE host."""

    host: Host
    protocol: TKOProtocol
    mantts: MANTTS

    @property
    def name(self) -> str:
        return self.host.name


class AdaptiveSystem:
    """Owns the transport substrate, network, UNITES, and per-host nodes.

    ``transport`` selects the substrate the whole stack runs over
    (:class:`repro.transport.base.TransportBackend`).  The default is the
    simulated world, wired exactly as before substrates became pluggable:
    the system creates a fresh :class:`~repro.transport.sim.SimBackend`,
    whose simulator/clock it exposes, and ``attach_network`` hands the
    caller-built topology to the backend untouched.  Real substrates
    (loopback, UDP) arrive with their fabric already built, so
    ``attach_network`` is skipped and ``run`` paces the event kernel
    against the wall clock.
    """

    def __init__(self, seed: int = 0, transport=None) -> None:
        if transport is None:
            from repro.transport.sim import SimBackend

            transport = SimBackend()
        self.transport = transport
        self.sim = transport.simulator
        self.clock = transport.clock
        self.rng = RngStreams(seed)
        self.network: Optional[Network] = transport.network
        self.unites = UNITES(self.sim)
        self.templates = TemplateCache()
        self.nodes: Dict[str, AdaptiveNode] = {}

    # ------------------------------------------------------------------
    def attach_network(self, network: Network) -> Network:
        """Install the (already built) topology; its RNG is unified."""
        if self.network is not None:
            raise RuntimeError("system already has a network")
        self.network = self.transport.adopt_network(network)
        return self.network

    def node(
        self,
        name: str,
        mips: float = 25.0,
        costs: Optional[CpuCosts] = None,
        buffer_capacity: int = 1 << 20,
        admission_bps: float = 1e9,
        cores: int = 1,
        manager_mode: str = "coalesced",
    ) -> AdaptiveNode:
        """Assemble Host + TKO + MANTTS on network node ``name``.

        ``manager_mode`` selects the per-host connection-management
        strategy: ``"coalesced"`` (lazy monitors, shared probes, timer
        groups — the scale path) or ``"legacy"`` (one free-running
        monitor and private timers per connection — the historical
        behaviour, kept as the equivalence baseline).
        """
        if self.network is None:
            raise RuntimeError("attach_network() before creating nodes")
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        host = Host(
            self.sim,
            self.network,
            name,
            mips=mips,
            costs=costs,
            buffer_capacity=buffer_capacity,
            cores=cores,
        )
        synthesizer = TKOSynthesizer(self.templates)
        protocol = TKOProtocol(host, synthesizer)
        mantts = MANTTS(
            host,
            protocol=protocol,
            resources=ResourceManager(host, admission_bps=admission_bps),
            manager_mode=manager_mode,
        )
        mantts.unites = self.unites
        node = AdaptiveNode(host=host, protocol=protocol, mantts=mantts)
        self.nodes[name] = node
        return node

    def teardown_node(self, name: str) -> None:
        """Tear one host down: close its connections, abort its sessions,
        release its ports and reservations, and detach it from the network.

        The switching node stays in the topology (transit traffic keeps
        flowing through it); only the host on top goes away.  Idempotent
        in effect: tearing down an unknown name raises, tearing down a
        node twice is an error via the same check.
        """
        node = self.nodes.pop(name, None)
        if node is None:
            raise KeyError(f"unknown node {name!r}")
        mantts = node.mantts
        # application handles first: close() runs the full termination
        # phase (monitor stop, member-update signalling, session close)
        for conn in list(mantts.connections.values()):
            if not conn._failed:
                conn.close()
        # responder-side sessions and anything still open on the protocol
        for session in list(mantts.protocol.sessions.values()):
            if not session.closed:
                session.abort(f"teardown of node {name}")
        # unclaimed responder reservations (initiator never showed up)
        for key, queue in list(mantts._unclaimed.items()):
            for ref in list(queue):
                mantts._cancel_res_guard(ref)
                mantts._release_unclaimed(key, ref)
        mantts.protocol.unlisten_all()
        self.network.detach_host(name)

    # ------------------------------------------------------------------
    def enable_telemetry(self, max_records: Optional[int] = None):
        """Turn on UNITES-X collection, clocked by this system's simulator.

        Returns the global telemetry handle so callers can export from it
        (``write_chrome_trace(system.enable_telemetry(), path)`` reads
        naturally in experiment scripts).
        """
        from repro.unites.obs.telemetry import TELEMETRY

        return TELEMETRY.enable(sim=self.sim, max_records=max_records)

    def enable_audit(self, **kwargs):
        """Turn on the QoS conformance audit plane for this system.

        Every connection subsequently instantiated by a node's MANTTS
        captures its negotiated contract and is measured against it.
        Keyword arguments configure the plane (``window``,
        ``warmup_windows``, ``loss_grace``, ``throughput_slack``,
        ``flight_capacity``, ``dump_dir``); returns the global
        :data:`~repro.unites.obs.audit.AUDIT` handle.
        """
        from repro.unites.obs.audit import AUDIT

        return AUDIT.enable(**kwargs)

    def serve_telemetry(self, host: str = "127.0.0.1", port: int = 0,
                        instance_labels=None):
        """Start the live HTTP telemetry plane for this system.

        Serves ``/metrics``, ``/healthz``, ``/connections``, and
        ``/audit`` from a daemon thread; returns the started
        :class:`~repro.unites.obs.server.TelemetryServer` (``.url`` has
        the bound address, ``.stop()`` shuts it down).
        ``instance_labels`` (e.g. ``{"shard": "2"}``) are stamped onto
        every exported metric sample — a shard worker serving its own
        scrape endpoint stays series-disjoint from its siblings.
        """
        from repro.unites.obs.server import TelemetryServer

        server = TelemetryServer(system=self, host=host, port=port,
                                 instance_labels=instance_labels)
        server.start()
        return server

    def run(self, until: Optional[float] = None, **kwargs) -> None:
        """Advance this system's world to timeline point ``until``.

        On the sim substrate this is plain event dispatch; on real
        substrates the backend paces the same event queue against the
        wall clock (extra keywords like ``stop_when`` pass through).
        """
        self.transport.run(until=until, **kwargs)

    @property
    def now(self) -> float:
        return self.sim.now
