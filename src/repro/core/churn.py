"""Connection-scale churn scenario: thousands of sessions on one host pair.

The C10K-style workload behind the scale benchmark (EXPERIMENTS.md row
"scale"): one initiator host opens a large mixed-TSC population of
adaptive connections against one responder — voice conversations
(implicit establishment), compressed video (explicit 2-way), bulk file
transfers (explicit 3-way) and telnet (implicit, transactional) — in
staggered waves, holds them concurrently open for class-specific
lifetimes, sends a few class-sized messages each, closes them, and
deterministically reopens a third of the population once (churn).

Everything is derived from the system seed and connection index, so one
seed produces a bit-identical run: the receiver-side delivery digest,
establishment/close counts, and peak concurrency are compared across
repeated runs *and* across manager modes (``legacy`` vs ``coalesced``)
— the coalesced ConnectionManager must not perturb the data path, only
the wall-clock spent simulating it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.profiles import ethernet_10, linear_path

SERVICE_PORT = 7000


@dataclass(frozen=True)
class ConnClass:
    """One traffic class of the churn population."""

    name: str
    acd_kw: dict
    lifetime: float        #: seconds between establishment and close
    message_bytes: int     #: padded payload size per message
    messages: int          #: messages sent per connection
    tsc: str               #: class-pool name (TSC value) for admission shares


#: The mixed population: two implicit classes (voice, telnet) and two
#: explicit ones (video 2-way, bulk 3-way) so both establishment styles
#: and the signalling path are exercised at scale.  Per-connection rates
#: are kept tiny relative to the 10 Mb/s path: the benchmark measures
#: connection-management overhead, not link saturation.
CLASSES: List[ConnClass] = [
    ConnClass(
        "voice",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=64_000, duration=600, loss_tolerance=0.05,
                message_size=160,
            ),
            qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                       duplicate_sensitive=False),
            explicit_tsc="interactive-isochronous",
        ),
        4.0, 160, 2, "interactive-isochronous",
    ),
    ConnClass(
        "video",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=1_500_000, duration=600, loss_tolerance=0.02,
                message_size=1200,
            ),
            qualitative=QualitativeQoS(isochronous=True),
            explicit_tsc="distributional-isochronous",
        ),
        5.0, 1200, 2, "distributional-isochronous",
    ),
    ConnClass(
        "bulk",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=400_000, duration=600, message_size=1400,
            ),
            qualitative=QualitativeQoS(),
            explicit_tsc="non-real-time-non-isochronous",
        ),
        6.0, 1400, 3, "non-real-time-non-isochronous",
    ),
    ConnClass(
        "telnet",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=9_600, duration=600, message_size=64,
            ),
            qualitative=QualitativeQoS(transactional=True),
            explicit_tsc="non-real-time-non-isochronous",
        ),
        4.5, 64, 2, "non-real-time-non-isochronous",
    ),
]

#: identical class-pool shares on both hosts: isochronous classes are
#: guaranteed capacity no matter how many bulk opens arrive
CLASS_SHARES: Dict[str, float] = {
    "interactive-isochronous": 0.2,
    "distributional-isochronous": 0.4,
    "non-real-time-non-isochronous": 0.4,
}


class ChurnScenario:
    """Deterministic open/send/close churn of ``n_connections`` sessions."""

    def __init__(
        self,
        n_connections: int = 1000,
        mode: str = "coalesced",
        seed: int = 7,
        wave_size: int = 50,
        wave_interval: float = 0.02,
        reopen_every: int = 3,
        rx_batching: bool = False,
        transport=None,
    ) -> None:
        if n_connections <= 0:
            raise ValueError("n_connections must be positive")
        self.n_connections = n_connections
        self.mode = mode
        self.reopen_every = reopen_every

        # ``transport`` selects the substrate (default: fresh SimBackend);
        # the digest equivalence test passes route_frames=True here to
        # prove the backend interface is bit-identical to the old wiring.
        self.system = AdaptiveSystem(seed=seed, transport=transport)
        # One switch on a fast LAN: explicit negotiations to a single peer
        # all share one signalling session, so the path must turn requests
        # around well inside NEGOTIATION_TIMEOUT even when hundreds queue.
        self.network = linear_path(
            self.system.sim, ethernet_10(), ("A", "B"), n_switches=1,
            rng=self.system.rng,
        )
        self.system.attach_network(self.network)
        # Generous budgets: admission must always succeed — the benchmark
        # studies connection-management scaling, not admission pressure.
        self.a = self.system.node(
            "A", mips=400.0, buffer_capacity=1 << 26, admission_bps=10e9,
            manager_mode=mode,
        )
        self.b = self.system.node(
            "B", mips=400.0, buffer_capacity=1 << 26, admission_bps=10e9,
            manager_mode=mode,
        )
        for node in (self.a, self.b):
            node.mantts.resources.configure_classes(CLASS_SHARES)
        if rx_batching:
            self.a.mantts.manager.enable_rx_batching()
            self.b.mantts.manager.enable_rx_batching()

        self._delivery = hashlib.sha256()
        self.delivered = 0
        self.established = 0
        self.failed = 0
        self.closed = 0
        self.reopened = 0
        self.live = 0
        self.peak_concurrent = 0
        self._failures: List[str] = []

        self.b.mantts.register_service(SERVICE_PORT, on_deliver=self._on_deliver)

        sim = self.system.sim
        for start in range(0, n_connections, wave_size):
            wave = list(range(start, min(start + wave_size, n_connections)))
            delay = (start // wave_size) * wave_interval
            sim.schedule(delay, lambda w=wave: self._open_wave(w))

    # ------------------------------------------------------------------
    def _on_deliver(self, data: bytes, meta: dict) -> None:
        self.delivered += 1
        self._delivery.update(data)
        self._delivery.update(b"|")

    def _open_wave(self, indices: List[int]) -> None:
        for i in indices:
            self._open_one(i, reopen=(self.reopen_every > 0
                                      and i % self.reopen_every == 0))

    def _open_one(self, index: int, reopen: bool) -> None:
        cls = CLASSES[index % len(CLASSES)]
        acd = ACD(participants=("B",), service_port=SERVICE_PORT, **cls.acd_kw)
        state = {"index": index, "cls": cls, "reopen": reopen}
        conn = self.a.mantts.open(
            acd,
            on_connected=lambda c, s=state: self._on_connected(c, s),
            on_failed=lambda reason, s=state: self._on_failed(reason, s),
        )
        state["conn"] = conn

    def _on_connected(self, conn, state: dict) -> None:
        self.established += 1
        self.live += 1
        if self.live > self.peak_concurrent:
            self.peak_concurrent = self.live
        sim = self.system.sim
        cls: ConnClass = state["cls"]
        index: int = state["index"]
        # class-sized messages, spread across the first part of the
        # lifetime; payload identifies (class, connection, message) so the
        # receiver-order digest is meaningful
        gap = cls.lifetime / (cls.messages + 2)
        for m in range(cls.messages):
            tag = f"{cls.name}:{index}:{m}:".encode()
            payload = tag + b"x" * max(0, cls.message_bytes - len(tag))
            sim.schedule((m + 1) * gap, lambda c=conn, p=payload: self._send(c, p))
        sim.schedule(cls.lifetime, lambda s=state: self._close(s))

    @staticmethod
    def _send(conn, payload: bytes) -> None:
        if not conn._failed and (conn.session is None or not conn.session.closed):
            conn.send(payload)

    def _close(self, state: dict) -> None:
        conn = state["conn"]
        if conn._failed:
            return
        conn.close()
        self.closed += 1
        self.live -= 1
        if state["reopen"]:
            state["reopen"] = False
            self.reopened += 1
            # deterministic churn: same class, fresh connection, shortly
            # after the close completes
            self.system.sim.schedule(
                0.05, lambda i=state["index"]: self._open_one(i, reopen=False)
            )

    def _on_failed(self, reason: str, state: dict) -> None:
        self.failed += 1
        self._failures.append(f"{state['cls'].name}:{state['index']}: {reason}")

    # ------------------------------------------------------------------
    def run(self, until: float = 20.0) -> "ChurnScenario":
        self.system.run(until=until)
        return self

    def collect(self) -> Dict[str, object]:
        """Deterministic run metrics (no wall-clock — callers time run())."""
        mgr = self.a.mantts.manager
        snap = mgr.snapshot()
        return {
            "mode": self.mode,
            "n_connections": self.n_connections,
            "established": self.established,
            "failed": self.failed,
            "closed": self.closed,
            "reopened": self.reopened,
            "delivered": self.delivered,
            "peak_concurrent": self.peak_concurrent,
            "delivery_digest": self._delivery.hexdigest(),
            "final_time": round(self.system.sim.now, 9),
            "events_dispatched": self.system.sim.events_dispatched,
            "timer_group_coalesced": snap["timer_group_coalesced"],
            "probe_cache_hits": snap["probe_cache_hits"],
            "scs_cache_hits": snap["scs_cache_hits"],
            "rx_coalesced_frames": self.a.host.rx_coalesced_frames
            + self.b.host.rx_coalesced_frames,
        }


def run_churn(
    n_connections: int = 1000,
    mode: str = "coalesced",
    seed: int = 7,
    duration: float = 20.0,
    **kw,
) -> Dict[str, object]:
    """Build, run, and collect one churn scenario (the benchmark entry)."""
    scenario = ChurnScenario(n_connections=n_connections, mode=mode, seed=seed, **kw)
    return scenario.run(until=duration).collect()


def identity_fields(metrics: Dict[str, object]) -> Dict[str, object]:
    """The subset of churn metrics that must be bit-identical for one seed
    across repeated runs and across manager modes (cache/coalescing
    counters legitimately differ between modes and are excluded)."""
    keys = (
        "n_connections", "established", "failed", "closed", "reopened",
        "delivered", "peak_concurrent", "delivery_digest", "final_time",
    )
    return {k: metrics[k] for k in keys}
