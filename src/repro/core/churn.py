"""Connection-scale churn scenario: thousands of sessions on one host pair.

The C10K-style workload behind the scale benchmark (EXPERIMENTS.md row
"scale"): one initiator host opens a large mixed-TSC population of
adaptive connections against one responder — voice conversations
(implicit establishment), compressed video (explicit 2-way), bulk file
transfers (explicit 3-way) and telnet (implicit, transactional) — in
staggered waves, holds them concurrently open for class-specific
lifetimes, sends a few class-sized messages each, closes them, and
deterministically reopens a third of the population once (churn).

Everything is derived from the system seed and connection index, so one
seed produces a bit-identical run: the receiver-side delivery digest,
establishment/close counts, and peak concurrency are compared across
repeated runs *and* across manager modes (``legacy`` vs ``coalesced``)
— the coalesced ConnectionManager must not perturb the data path, only
the wall-clock spent simulating it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.system import AdaptiveSystem
from repro.mantts.acd import ACD
from repro.mantts.qos import QualitativeQoS, QuantitativeQoS
from repro.netsim.network import Network
from repro.netsim.profiles import NetworkProfile, ethernet_10, linear_path
from repro.tko.templates import TemplateCache

SERVICE_PORT = 7000

#: trunk propagation delay between neighbouring groups — the shard
#: lookahead.  Long relative to the access links (5 ms vs 100 µs) so the
#: conservative barrier buys thousands of events per epoch, and carried
#: by a 155 Mb/s channel whose serialization times are incommensurate
#: with the 10 Mb/s access links (avoids exact float-time collisions
#: between cross-shard arrivals and local traffic).
TRUNK_DELAY = 5e-3


def trunk_profile() -> NetworkProfile:
    """ATM-like inter-group trunk (155 Mb/s, 5 ms, fiber BER)."""
    return NetworkProfile("trunk-155", 155e6, TRUNK_DELAY, 1e-9, 1500, 128)


@dataclass(frozen=True)
class ConnClass:
    """One traffic class of the churn population."""

    name: str
    acd_kw: dict
    lifetime: float        #: seconds between establishment and close
    message_bytes: int     #: padded payload size per message
    messages: int          #: messages sent per connection
    tsc: str               #: class-pool name (TSC value) for admission shares


#: The mixed population: two implicit classes (voice, telnet) and two
#: explicit ones (video 2-way, bulk 3-way) so both establishment styles
#: and the signalling path are exercised at scale.  Per-connection rates
#: are kept tiny relative to the 10 Mb/s path: the benchmark measures
#: connection-management overhead, not link saturation.
CLASSES: List[ConnClass] = [
    ConnClass(
        "voice",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=64_000, duration=600, loss_tolerance=0.05,
                message_size=160,
            ),
            qualitative=QualitativeQoS(isochronous=True, ordered=False,
                                       duplicate_sensitive=False),
            explicit_tsc="interactive-isochronous",
        ),
        4.0, 160, 2, "interactive-isochronous",
    ),
    ConnClass(
        "video",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=1_500_000, duration=600, loss_tolerance=0.02,
                message_size=1200,
            ),
            qualitative=QualitativeQoS(isochronous=True),
            explicit_tsc="distributional-isochronous",
        ),
        5.0, 1200, 2, "distributional-isochronous",
    ),
    ConnClass(
        "bulk",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=400_000, duration=600, message_size=1400,
            ),
            qualitative=QualitativeQoS(),
            explicit_tsc="non-real-time-non-isochronous",
        ),
        6.0, 1400, 3, "non-real-time-non-isochronous",
    ),
    ConnClass(
        "telnet",
        dict(
            quantitative=QuantitativeQoS(
                avg_throughput_bps=9_600, duration=600, message_size=64,
            ),
            qualitative=QualitativeQoS(transactional=True),
            explicit_tsc="non-real-time-non-isochronous",
        ),
        4.5, 64, 2, "non-real-time-non-isochronous",
    ),
]

#: identical class-pool shares on both hosts: isochronous classes are
#: guaranteed capacity no matter how many bulk opens arrive
CLASS_SHARES: Dict[str, float] = {
    "interactive-isochronous": 0.2,
    "distributional-isochronous": 0.4,
    "non-real-time-non-isochronous": 0.4,
}


class ChurnScenario:
    """Deterministic open/send/close churn of ``n_connections`` sessions."""

    def __init__(
        self,
        n_connections: int = 1000,
        mode: str = "coalesced",
        seed: int = 7,
        wave_size: int = 50,
        wave_interval: float = 0.02,
        reopen_every: int = 3,
        rx_batching: bool = False,
        transport=None,
    ) -> None:
        if n_connections <= 0:
            raise ValueError("n_connections must be positive")
        self.n_connections = n_connections
        self.mode = mode
        self.reopen_every = reopen_every

        # ``transport`` selects the substrate (default: fresh SimBackend);
        # the digest equivalence test passes route_frames=True here to
        # prove the backend interface is bit-identical to the old wiring.
        self.system = AdaptiveSystem(seed=seed, transport=transport)
        # One switch on a fast LAN: explicit negotiations to a single peer
        # all share one signalling session, so the path must turn requests
        # around well inside NEGOTIATION_TIMEOUT even when hundreds queue.
        self.network = linear_path(
            self.system.sim, ethernet_10(), ("A", "B"), n_switches=1,
            rng=self.system.rng,
        )
        self.system.attach_network(self.network)
        # Generous budgets: admission must always succeed — the benchmark
        # studies connection-management scaling, not admission pressure.
        self.a = self.system.node(
            "A", mips=400.0, buffer_capacity=1 << 26, admission_bps=10e9,
            manager_mode=mode,
        )
        self.b = self.system.node(
            "B", mips=400.0, buffer_capacity=1 << 26, admission_bps=10e9,
            manager_mode=mode,
        )
        for node in (self.a, self.b):
            node.mantts.resources.configure_classes(CLASS_SHARES)
        if rx_batching:
            self.a.mantts.manager.enable_rx_batching()
            self.b.mantts.manager.enable_rx_batching()

        self._delivery = hashlib.sha256()
        self.delivered = 0
        self.established = 0
        self.failed = 0
        self.closed = 0
        self.reopened = 0
        self.live = 0
        self.peak_concurrent = 0
        self._failures: List[str] = []

        self.b.mantts.register_service(SERVICE_PORT, on_deliver=self._on_deliver)

        sim = self.system.sim
        for start in range(0, n_connections, wave_size):
            wave = list(range(start, min(start + wave_size, n_connections)))
            delay = (start // wave_size) * wave_interval
            sim.schedule(delay, lambda w=wave: self._open_wave(w))

    # ------------------------------------------------------------------
    def _on_deliver(self, data: bytes, meta: dict) -> None:
        self.delivered += 1
        self._delivery.update(data)
        self._delivery.update(b"|")

    def _open_wave(self, indices: List[int]) -> None:
        for i in indices:
            self._open_one(i, reopen=(self.reopen_every > 0
                                      and i % self.reopen_every == 0))

    def _open_one(self, index: int, reopen: bool) -> None:
        cls = CLASSES[index % len(CLASSES)]
        acd = ACD(participants=("B",), service_port=SERVICE_PORT, **cls.acd_kw)
        state = {"index": index, "cls": cls, "reopen": reopen}
        conn = self.a.mantts.open(
            acd,
            on_connected=lambda c, s=state: self._on_connected(c, s),
            on_failed=lambda reason, s=state: self._on_failed(reason, s),
        )
        state["conn"] = conn

    def _on_connected(self, conn, state: dict) -> None:
        self.established += 1
        self.live += 1
        if self.live > self.peak_concurrent:
            self.peak_concurrent = self.live
        sim = self.system.sim
        cls: ConnClass = state["cls"]
        index: int = state["index"]
        # class-sized messages, spread across the first part of the
        # lifetime; payload identifies (class, connection, message) so the
        # receiver-order digest is meaningful
        gap = cls.lifetime / (cls.messages + 2)
        for m in range(cls.messages):
            tag = f"{cls.name}:{index}:{m}:".encode()
            payload = tag + b"x" * max(0, cls.message_bytes - len(tag))
            sim.schedule((m + 1) * gap, lambda c=conn, p=payload: self._send(c, p))
        sim.schedule(cls.lifetime, lambda s=state: self._close(s))

    @staticmethod
    def _send(conn, payload: bytes) -> None:
        if not conn._failed and (conn.session is None or not conn.session.closed):
            conn.send(payload)

    def _close(self, state: dict) -> None:
        conn = state["conn"]
        if conn._failed:
            return
        conn.close()
        self.closed += 1
        self.live -= 1
        if state["reopen"]:
            state["reopen"] = False
            self.reopened += 1
            # deterministic churn: same class, fresh connection, shortly
            # after the close completes
            self.system.sim.schedule(
                0.05, lambda i=state["index"]: self._open_one(i, reopen=False)
            )

    def _on_failed(self, reason: str, state: dict) -> None:
        self.failed += 1
        self._failures.append(f"{state['cls'].name}:{state['index']}: {reason}")

    # ------------------------------------------------------------------
    def run(self, until: float = 20.0) -> "ChurnScenario":
        self.system.run(until=until)
        return self

    def collect(self) -> Dict[str, object]:
        """Deterministic run metrics (no wall-clock — callers time run())."""
        mgr = self.a.mantts.manager
        snap = mgr.snapshot()
        return {
            "mode": self.mode,
            "n_connections": self.n_connections,
            "established": self.established,
            "failed": self.failed,
            "closed": self.closed,
            "reopened": self.reopened,
            "delivered": self.delivered,
            "peak_concurrent": self.peak_concurrent,
            "delivery_digest": self._delivery.hexdigest(),
            "final_time": round(self.system.sim.now, 9),
            "events_dispatched": self.system.sim.events_dispatched,
            "timer_group_coalesced": snap["timer_group_coalesced"],
            "probe_cache_hits": snap["probe_cache_hits"],
            "scs_cache_hits": snap["scs_cache_hits"],
            "rx_coalesced_frames": self.a.host.rx_coalesced_frames
            + self.b.host.rx_coalesced_frames,
        }


def run_churn(
    n_connections: int = 1000,
    mode: str = "coalesced",
    seed: int = 7,
    duration: float = 20.0,
    **kw,
) -> Dict[str, object]:
    """Build, run, and collect one churn scenario (the benchmark entry)."""
    scenario = ChurnScenario(n_connections=n_connections, mode=mode, seed=seed, **kw)
    return scenario.run(until=duration).collect()


def identity_fields(metrics: Dict[str, object]) -> Dict[str, object]:
    """The subset of churn metrics that must be bit-identical for one seed
    across repeated runs and across manager modes (cache/coalescing
    counters legitimately differ between modes and are excluded)."""
    keys = (
        "n_connections", "established", "failed", "closed", "reopened",
        "delivered", "peak_concurrent", "delivery_digest", "final_time",
    )
    return {k: metrics[k] for k in keys}


# ======================================================================
# grouped / shard-aware churn (the one-world parallel scale scenario)
# ======================================================================
class GroupedChurnScenario:
    """Mixed-TSC churn across ``n_groups`` host groups — the shard-ready
    one-world topology (see ``docs/sharding.md``).

    Each group ``g`` has an initiator ``A{g}`` and a local responder
    ``B{g}`` on switch ``s{g}`` over 10 Mb/s access links, plus a
    *remote-service* responder ``R{g}`` attached **directly to the
    previous group's switch** ``s{(g-1)%G}`` over a long-delay trunk.
    Group ``g``'s cross-group connections terminate on ``R{(g+1)%G}``,
    so the probed path ``A{g} -> s{g} -> R{(g+1)%G}`` crosses exactly one
    trunk whose near half group ``g`` owns: under sharding, every link a
    network monitor ever samples carries live, single-writer state that
    evolves identically to the serial run.  Trunk delay = lookahead.

    The same constructor builds the serial world (``shard_id=None``) and
    each worker's world (``shard_id=k``): the **full topology always
    exists** (routing and static path attributes must agree everywhere;
    link RNG streams are name-derived, so construction is order-safe),
    but hosts, services, template caches, and connection waves are only
    instantiated for locally-owned groups, and boundary-egress links are
    converted to gateway mode.  Each group gets its own
    :class:`~repro.tko.templates.TemplateCache` — in serial *and* shard
    builds — so template warming never couples groups across a shard
    boundary.

    The delivery digest is assembled per global connection index (parsed
    from the payload tag), so per-shard partial digests merge into a
    value bit-identical to the serial digest: :func:`merge_conn_digests`.
    """

    def __init__(
        self,
        n_connections: int = 1000,
        n_groups: int = 4,
        cross_every: int = 4,
        mode: str = "coalesced",
        seed: int = 7,
        wave_size: int = 50,
        wave_interval: float = 0.02,
        reopen_every: int = 3,
        shard_id: Optional[int] = None,
        n_shards: int = 1,
    ) -> None:
        if n_connections <= 0:
            raise ValueError("n_connections must be positive")
        if n_groups < 1:
            raise ValueError("need at least one group")
        if n_shards > n_groups:
            raise ValueError("cannot have more shards than groups")
        if shard_id is not None and not (0 <= shard_id < n_shards):
            raise ValueError(f"shard_id {shard_id} outside [0, {n_shards})")
        self.n_connections = n_connections
        self.n_groups = n_groups
        self.cross_every = cross_every
        self.mode = mode
        self.reopen_every = reopen_every
        self.shard_id = shard_id
        self.n_shards = n_shards

        from repro.shard.partition import ShardPlan

        G = n_groups
        self.plan = ShardPlan.from_groups(
            [{f"A{g}", f"B{g}", f"R{g}", f"s{g}"} for g in range(G)],
            max(n_shards, 1),
        )
        self.system = AdaptiveSystem(seed=seed)
        sim = self.system.sim
        self.sim = sim

        # --- full topology, identical in every build -------------------
        net = Network(sim, self.system.rng)
        access, trunk = ethernet_10(), trunk_profile()
        for g in range(G):
            net.add_node(f"s{g}")
        for g in range(G):
            for host in (f"A{g}", f"B{g}", f"R{g}"):
                net.add_node(host)
            for host, prof in ((f"A{g}", access), (f"B{g}", access)):
                net.add_link(
                    host, f"s{g}",
                    bandwidth_bps=prof.bandwidth_bps, delay=prof.delay,
                    ber=prof.ber, queue_limit=prof.queue_limit, mtu=prof.mtu,
                )
            # the trunk: R{g} hangs off the *previous* group's switch
            net.add_link(
                f"s{(g - 1) % G}", f"R{g}",
                bandwidth_bps=trunk.bandwidth_bps, delay=trunk.delay,
                ber=trunk.ber, queue_limit=trunk.queue_limit, mtu=trunk.mtu,
            )
        self.network = self.system.attach_network(net)

        # --- locally-owned groups only ---------------------------------
        if shard_id is None:
            self.owned_groups = list(range(G))
        else:
            self.owned_groups = [
                g for g in range(G) if self.plan.shard_of(f"s{g}") == shard_id
            ]
        self.nodes: Dict[str, object] = {}
        for g in self.owned_groups:
            cache = TemplateCache()
            for name in (f"A{g}", f"B{g}", f"R{g}"):
                node = self.system.node(
                    name, mips=400.0, buffer_capacity=1 << 26,
                    admission_bps=10e9, manager_mode=mode,
                )
                node.mantts.resources.configure_classes(CLASS_SHARES)
                node.protocol.synthesizer.templates = cache
                self.nodes[name] = node
            for name in (f"B{g}", f"R{g}"):
                self.nodes[name].mantts.register_service(
                    SERVICE_PORT, on_deliver=self._on_deliver
                )

        # --- boundary links -> gateway mode (shard builds only) --------
        self.gateway = None
        self.lookahead = None
        if shard_id is not None and n_shards > 1:
            from repro.shard.gateway import ShardGateway, make_boundary

            self.lookahead = self.plan.lookahead(self.network)
            self.gateway = ShardGateway(sim, self.network, shard_id)
            for (u, v), (su, sv) in self.plan.boundary_links(
                    self.network).items():
                if su == shard_id:
                    make_boundary(self.network.links[(u, v)],
                                  self.gateway, sv, v)

        # --- churn bookkeeping -----------------------------------------
        self._conn_digests: Dict[int, "hashlib._Hash"] = {}
        self.delivered = 0
        self.established = 0
        self.failed = 0
        self.closed = 0
        self.reopened = 0
        self._live: Dict[int, int] = {g: 0 for g in self.owned_groups}
        self._peak: Dict[int, int] = {g: 0 for g in self.owned_groups}
        self._failures: List[str] = []

        # staggered waves over *global* indices (identical schedule in
        # every build); a shard only opens the connections it initiates
        for start in range(0, n_connections, wave_size):
            wave = [
                i for i in range(start, min(start + wave_size, n_connections))
                if (i % G) in self._owned_set
            ]
            if wave:
                delay = (start // wave_size) * wave_interval
                sim.schedule(delay, lambda w=wave: self._open_wave(w))

    # ------------------------------------------------------------------
    @property
    def _owned_set(self) -> set:
        return set(self.owned_groups)

    def _class_of(self, index: int) -> ConnClass:
        return CLASSES[(index // self.n_groups) % len(CLASSES)]

    def _responder_of(self, index: int) -> str:
        g = index % self.n_groups
        within = index // self.n_groups
        cross = (self.n_groups > 1 and self.cross_every > 0
                 and within % self.cross_every == 0)
        return f"R{(g + 1) % self.n_groups}" if cross else f"B{g}"

    # ------------------------------------------------------------------
    def _on_deliver(self, data: bytes, meta: dict) -> None:
        self.delivered += 1
        index = int(data.split(b":", 3)[1])
        h = self._conn_digests.get(index)
        if h is None:
            h = self._conn_digests[index] = hashlib.sha256()
        h.update(data)
        h.update(b"|")

    def _open_wave(self, indices: List[int]) -> None:
        for i in indices:
            self._open_one(i, reopen=(self.reopen_every > 0
                                      and i % self.reopen_every == 0))

    def _open_one(self, index: int, reopen: bool) -> None:
        g = index % self.n_groups
        cls = self._class_of(index)
        responder = self._responder_of(index)
        acd = ACD(participants=(responder,), service_port=SERVICE_PORT,
                  **cls.acd_kw)
        state = {"index": index, "cls": cls, "reopen": reopen, "group": g}
        conn = self.nodes[f"A{g}"].mantts.open(
            acd,
            on_connected=lambda c, s=state: self._on_connected(c, s),
            on_failed=lambda reason, s=state: self._on_failed(reason, s),
        )
        state["conn"] = conn

    def _on_connected(self, conn, state: dict) -> None:
        self.established += 1
        g = state["group"]
        self._live[g] += 1
        if self._live[g] > self._peak[g]:
            self._peak[g] = self._live[g]
        cls: ConnClass = state["cls"]
        index: int = state["index"]
        gap = cls.lifetime / (cls.messages + 2)
        for m in range(cls.messages):
            tag = f"{cls.name}:{index}:{m}:".encode()
            payload = tag + b"x" * max(0, cls.message_bytes - len(tag))
            self.sim.schedule(
                (m + 1) * gap, lambda c=conn, p=payload: self._send(c, p)
            )
        self.sim.schedule(cls.lifetime, lambda s=state: self._close(s))

    _send = staticmethod(ChurnScenario._send)

    def _close(self, state: dict) -> None:
        conn = state["conn"]
        if conn._failed:
            return
        conn.close()
        self.closed += 1
        self._live[state["group"]] -= 1
        if state["reopen"]:
            state["reopen"] = False
            self.reopened += 1
            self.sim.schedule(
                0.05, lambda i=state["index"]: self._open_one(i, reopen=False)
            )

    def _on_failed(self, reason: str, state: dict) -> None:
        self.failed += 1
        self._failures.append(f"{state['cls'].name}:{state['index']}: {reason}")

    # ------------------------------------------------------------------
    def run(self, until: float) -> "GroupedChurnScenario":
        self.system.run(until=until)
        return self

    def collect(self) -> Dict[str, object]:
        """Deterministic metrics; in a shard build these are *partial*
        (this shard's share) and merge via :func:`merge_sharded_metrics`."""
        digests = {i: h.hexdigest() for i, h in self._conn_digests.items()}
        return {
            "mode": self.mode,
            "n_connections": self.n_connections,
            "n_groups": self.n_groups,
            "established": self.established,
            "failed": self.failed,
            "closed": self.closed,
            "reopened": self.reopened,
            "delivered": self.delivered,
            # sum of per-group peaks: well-defined under any sharding
            "peak_concurrent": sum(self._peak.values()),
            "conn_digests": digests,
            "delivery_digest": merge_conn_digests(digests),
            "final_time": round(self.sim.now, 9),
            "events_dispatched": self.sim.events_dispatched,
        }


def merge_conn_digests(digests: Dict[int, str]) -> str:
    """Canonical receiver-side digest over per-connection sub-digests.

    Folding in global-connection-index order makes the digest independent
    of *which process* observed each delivery while still covering every
    payload byte and per-connection arrival order — the quantity that
    must be bit-identical between serial and sharded runs.
    """
    acc = hashlib.sha256()
    for index in sorted(digests):
        acc.update(f"{index}:{digests[index]}|".encode())
    return acc.hexdigest()


def grouped_duration(n_connections: int, wave_size: int = 50,
                     wave_interval: float = 0.02) -> float:
    """Simulated horizon covering every open, reopen, and close.

    Wave span + the longest lifetime twice (original + reopen) + slack
    for establishment/teardown signalling.  Serial and sharded entry
    points must use the same value — both call this.
    """
    waves = (n_connections + wave_size - 1) // wave_size
    longest = max(c.lifetime for c in CLASSES)
    return waves * wave_interval + 2 * longest + 2.0


def run_grouped_churn(
    n_connections: int = 1000,
    n_groups: int = 4,
    mode: str = "coalesced",
    seed: int = 7,
    duration: Optional[float] = None,
    **kw,
) -> Dict[str, object]:
    """Build, run, and collect one *serial* grouped-churn world."""
    scenario = GroupedChurnScenario(
        n_connections=n_connections, n_groups=n_groups, mode=mode,
        seed=seed, **kw,
    )
    if duration is None:
        duration = grouped_duration(n_connections,
                                    kw.get("wave_size", 50),
                                    kw.get("wave_interval", 0.02))
    return scenario.run(until=duration).collect()


def build_churn_shard(shard_id: int, **kw) -> GroupedChurnScenario:
    """Shard-worker builder (importable by reference; see
    :func:`repro.shard.worker.shard_worker_main`)."""
    return GroupedChurnScenario(shard_id=shard_id, **kw)


def run_sharded_churn(
    n_connections: int = 1000,
    n_shards: int = 2,
    n_groups: int = 4,
    mode: str = "coalesced",
    seed: int = 7,
    duration: Optional[float] = None,
    recv_timeout: float = 300.0,
    **kw,
) -> Dict[str, object]:
    """Run the grouped scenario across ``n_shards`` kernel processes.

    Returns the aggregated metrics (comparable to
    :func:`run_grouped_churn` via :func:`grouped_identity_fields`) plus
    ``coordinator`` barrier stats and the raw per-shard results.
    """
    from repro.shard.coordinator import ShardCoordinator

    if duration is None:
        duration = grouped_duration(n_connections,
                                    kw.get("wave_size", 50),
                                    kw.get("wave_interval", 0.02))
    coordinator = ShardCoordinator(
        builder=build_churn_shard,
        builder_kw=dict(
            n_connections=n_connections, n_groups=n_groups, mode=mode,
            seed=seed, n_shards=n_shards, **kw,
        ),
        n_shards=n_shards,
        until=duration,
        lookahead=TRUNK_DELAY,
        recv_timeout=recv_timeout,
    )
    out = coordinator.run()
    return merge_sharded_metrics(out["shards"], out["coordinator"])


def merge_sharded_metrics(
    shards: List[Dict[str, object]], coordinator: Dict[str, object]
) -> Dict[str, object]:
    """Fold per-shard partial results into serial-comparable metrics."""
    digests: Dict[int, str] = {}
    for result in shards:
        for index, digest in result["conn_digests"].items():
            if index in digests:
                raise ValueError(
                    f"connection {index} delivered on two shards"
                )
            digests[index] = digest
    merged: Dict[str, object] = {
        "mode": shards[0]["mode"],
        "n_connections": shards[0]["n_connections"],
        "n_groups": shards[0]["n_groups"],
        "n_shards": len(shards),
        "established": sum(r["established"] for r in shards),
        "failed": sum(r["failed"] for r in shards),
        "closed": sum(r["closed"] for r in shards),
        "reopened": sum(r["reopened"] for r in shards),
        "delivered": sum(r["delivered"] for r in shards),
        "peak_concurrent": sum(r["peak_concurrent"] for r in shards),
        "delivery_digest": merge_conn_digests(digests),
        "final_time": max(r["final_time"] for r in shards),
        "events_dispatched": sum(r["events_dispatched"] for r in shards),
        "coordinator": dict(coordinator),
        "shards": shards,
    }
    return merged


def grouped_identity_fields(metrics: Dict[str, object]) -> Dict[str, object]:
    """The serial ≡ sharded bit-identity payload for grouped churn.

    ``peak_concurrent`` is the sum of per-group peaks (well-defined under
    any partition); ``events_dispatched`` is excluded — shard kernels
    legitimately dispatch different bookkeeping events (wave lambdas,
    injected arrivals) than one serial kernel."""
    keys = (
        "n_connections", "established", "failed", "closed", "reopened",
        "delivered", "peak_concurrent", "delivery_digest", "final_time",
    )
    return {k: metrics[k] for k in keys}
