"""Canned experiment scenarios.

``PointToPointScenario`` is the workhorse: two ADAPTIVE hosts separated by
a configurable path (profile, switch count, background congestion), one
workload from :mod:`repro.apps`, driven either through a raw
:class:`~repro.tko.config.SessionConfig` (direct TKO, used when comparing
mechanism choices) or through a full ACD via MANTTS (used when the
three-stage transformation itself is under test).  ``collect()`` returns
the metric dictionary every benchmark table is built from.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.rpc import EchoResponder, RequestResponseClient
from repro.apps.workloads import DeliveryTracker, make_source
from repro.core.system import AdaptiveSystem
from repro.host.cpu import CpuCosts
from repro.mantts.acd import ACD
from repro.netsim.profiles import NetworkProfile, ethernet_10, linear_path
from repro.netsim.traffic import BackgroundLoad
from repro.tko.config import SessionConfig

SERVICE_PORT = 7000


class PointToPointScenario:
    """A two-host experiment over one path."""

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        acd: Optional[ACD] = None,
        workload: str = "bulk",
        workload_kw: Optional[Dict[str, Any]] = None,
        profile: Optional[NetworkProfile] = None,
        n_switches: int = 2,
        duration: float = 10.0,
        seed: int = 0,
        mips: float = 25.0,
        cores: int = 1,
        costs: Optional[CpuCosts] = None,
        bg_bps: float = 0.0,
        bg_start: float = 0.0,
        deadline: Optional[float] = None,
        binding: str = "dynamic",
        default_policies: bool = False,
    ) -> None:
        if (config is None) == (acd is None):
            raise ValueError("provide exactly one of config= or acd=")
        self.duration = duration
        self.system = AdaptiveSystem(seed=seed)
        prof = profile if profile is not None else ethernet_10()
        self.network = linear_path(
            self.system.sim, prof, ("A", "B"), n_switches=n_switches, rng=self.system.rng
        )
        self.system.attach_network(self.network)
        self.a = self.system.node("A", mips=mips, costs=costs, cores=cores)
        self.b = self.system.node("B", mips=mips, costs=costs, cores=cores)
        self.tracker = DeliveryTracker(deadline=deadline).bind_clock(self.system.sim)
        self.responder: Optional[EchoResponder] = None
        self.sender_session = None
        self.connection = None
        self.failed: Optional[str] = None

        is_rpc = workload == "rpc"
        if is_rpc:
            self.responder = EchoResponder(
                response_bytes=(workload_kw or {}).pop("response_bytes", 512)
                if workload_kw
                else 512
            )
            self.b.mantts.register_service(SERVICE_PORT, on_session=self.responder.attach)
        else:
            self.b.mantts.register_service(SERVICE_PORT, on_deliver=self.tracker.on_deliver)

        rng = self.system.rng.stream("workload")
        if config is not None:
            self.sender_session = self.a.protocol.create_session(
                config,
                "B",
                SERVICE_PORT,
                on_open_failed=self._on_failed,
            )
            self.sender_session.connect()
            sender = self.sender_session
        else:
            self.connection = self.a.mantts.open(
                acd,
                on_failed=self._on_failed,
                binding=binding,
                default_policies=default_policies,
            )
            sender = self.connection
        self.source = make_source(
            workload, self.system.sim, sender, rng=rng, **(workload_kw or {})
        )
        if is_rpc:
            # client-side responses come back on the sender session
            if self.sender_session is not None:
                self.sender_session.on_deliver = self.source.on_deliver
            else:
                self.connection.on_deliver = self.source.on_deliver

        self.bg: Optional[BackgroundLoad] = None
        if bg_bps > 0:
            self.bg = BackgroundLoad(self.network, "s1", f"s{n_switches}", bg_bps)
            self.bg.start(bg_start)
        self.source.start(0.05)

    # ------------------------------------------------------------------
    def _on_failed(self, reason: str) -> None:
        self.failed = reason

    @property
    def session(self):
        """The sender-side TKO session (whichever mode built it)."""
        if self.sender_session is not None:
            return self.sender_session
        return self.connection.session if self.connection is not None else None

    def run(self, until: Optional[float] = None) -> "PointToPointScenario":
        self.system.run(until=until if until is not None else self.duration)
        return self

    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, Optional[float]]:
        """The standard metric dictionary (None-safe on failed setups)."""
        s = self.session
        stats = s.stats if s is not None else None
        elapsed = max(1e-9, self.system.now - 0.05)
        drops = sum(l.stats.dropped_overflow for l in self.network.links.values())
        corrupted = sum(l.stats.corrupted for l in self.network.links.values())
        out: Dict[str, Optional[float]] = {
            "msgs_sent": float(self.source.messages_sent),
            "msgs_delivered": float(self.tracker.count),
            # delivery-interval goodput when observable, else run-average
            "goodput_bps": self.tracker.goodput_bps()
            or self.tracker.bytes * 8.0 / elapsed,
            "mean_latency": self.tracker.mean_latency if self.tracker.count else None,
            "p95_latency": self.tracker.p95_latency if self.tracker.count else None,
            "jitter": self.tracker.jitter if self.tracker.count else None,
            "deadline_miss_rate": self.tracker.deadline_miss_rate()
            if self.tracker.deadline is not None
            else None,
            "loss_rate": (
                1.0 - self.tracker.count / self.source.messages_sent
                if self.source.messages_sent
                else None
            ),
            "link_drops": float(drops),
            "link_corrupted": float(corrupted),
            "cpu_a": self.a.host.cpu.utilization(elapsed),
            "cpu_b": self.b.host.cpu.utilization(elapsed),
        }
        if stats is not None:
            out.update(
                {
                    "pdus_sent": float(stats.pdus_sent),
                    "retransmissions": float(stats.retransmissions),
                    "wire_bytes": float(stats.wire_bytes_sent),
                    "setup_time": stats.connection_setup_time,
                    "reconfigurations": float(stats.reconfigurations),
                }
            )
        if isinstance(self.source, RequestResponseClient):
            out["rpc_completed"] = float(self.source.completed)
            out["rpc_mean_response"] = self.source.mean_response_time or None
            out["rpc_timeouts"] = float(self.source.timeouts)
        return out


def run_point_to_point(**kwargs) -> Dict[str, Optional[float]]:
    """One-shot helper: build, run, collect."""
    duration = kwargs.get("duration", 10.0)
    scenario = PointToPointScenario(**kwargs)
    scenario.run(duration)
    return scenario.collect()
