"""TKO_Synthesizer: SCS → executable session configuration (Stage III).

"The synthesizer receives the session configuration specification from the
MANTTS-TSI and transforms it into an efficient, lightweight TKO_Context
session instantiation" (§4.2.2).  It:

* composes concrete mechanisms from the repository
  (:mod:`repro.mechanisms.registry`) per the config;
* consults the template cache so commonly requested configurations skip
  the full synthesis cost;
* charges the instantiation work to the host CPU (this is the measurable
  part of the configuration delay that Figure 2's bench reports);
* coordinates run-time reconfiguration: given a revised config it
  computes the *difference* against the session's current mechanisms and
  segues only the slots that changed — preferring cheap in-place
  parameter adjustment (e.g. retuning a rate-control gap or a playout
  point) over a full mechanism swap;
* exposes an instrumentation hook where UNITES attaches its collectors.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.host.nic import Host
from repro.mechanisms.registry import build_mechanism, mechanism_plan
from repro.tko.config import SessionConfig
from repro.tko.context import SLOTS, TKOContext
from repro.tko.session import TKOSession
from repro.tko.templates import Template, TemplateCache
from repro.tko.util import noop as _noop


class TKOSynthesizer:
    """Builds and rebinds session configurations."""

    def __init__(self, templates: Optional[TemplateCache] = None) -> None:
        self.templates = templates if templates is not None else TemplateCache()
        #: UNITES instrumentation callbacks, invoked per new session
        self.instruments: List[Callable[[TKOSession], None]] = []
        self.sessions_synthesized = 0

    # ------------------------------------------------------------------
    def synthesize_context(
        self,
        cfg: SessionConfig,
        group: Optional[str] = None,
        members: Optional[list] = None,
    ) -> TKOContext:
        """Compose a mechanism table for ``cfg`` from the repository."""
        mechanisms = {
            slot: build_mechanism(slot, cfg, group=group, members=members)
            for slot in SLOTS
        }
        return TKOContext(mechanisms)

    def instantiate(
        self,
        host: Host,
        cfg: SessionConfig,
        conn_id: int,
        local_port: int,
        remote_host: str,
        remote_port: int,
        group: Optional[str] = None,
        members: Optional[list] = None,
        **callbacks,
    ) -> TKOSession:
        """Create a fully wired session, charging instantiation cost.

        A template-cache hit instantiates at a fraction of the dynamic
        synthesis cost; every instantiation also (re)stores its template so
        repeated requests get progressively cheaper — the warm-cache effect
        the Figure 2 bench measures.
        """
        cost, hit = self.templates.instantiation_cost(cfg)
        host.cpu.submit(cost, _noop)
        if not hit:
            self.templates.store(cfg)
        # group sessions carry per-connection member state; never cache them
        cacheable = group is None and cfg.delivery != "multicast"
        template = self.templates.peek(cfg) if cacheable else None
        if template is not None and template.plan is not None:
            # compile-on-hit: *fresh* mechanism instances from the cached
            # recipe — sharing live mechanisms across sessions would let a
            # later segue mutate the cached table under everyone
            mechanisms = {slot: cls(**kwargs) for slot, cls, kwargs in template.plan}
            context = TKOContext(mechanisms)
        else:
            context = self.synthesize_context(cfg, group=group, members=members)
        session = TKOSession(
            host,
            cfg,
            context,
            conn_id,
            local_port,
            remote_host,
            remote_port,
            pipeline_specs=template.specs if template is not None else None,
            **callbacks,
        )
        self.sessions_synthesized += 1
        if template is not None:
            self._warm_template(template, cfg, session)
        for instrument in self.instruments:
            instrument(session)
        return session

    @staticmethod
    def _warm_template(template: Template, cfg: SessionConfig, session: TKOSession) -> None:
        """Attach the build recipe and compiled stage table after first use."""
        if template.plan is None:
            template.plan = tuple(
                (slot, *mechanism_plan(slot, cfg)) for slot in SLOTS
            )
        if template.specs is None:
            pipe = getattr(session.executor, "pipeline", None)
            if pipe is not None:
                template.specs = dict(pipe.specs)
        if template.codegen is None:
            # which generated-closure shape serves this configuration —
            # a pure diagnostic linking the template cache to the codegen
            # factory cache; absent under non-generated executors
            template.codegen = getattr(session.executor, "codegen_key", None)

    # ------------------------------------------------------------------
    # run-time reconfiguration
    # ------------------------------------------------------------------
    #: config fields that identify each slot's mechanism instance
    _SLOT_IDENTITY = {
        "connection": lambda c: (c.connection,),
        "transmission": lambda c: (c.transmission,),
        "detection": lambda c: (c.detection, c.checksum_placement),
        "ack": lambda c: (c.ack,),
        "recovery": lambda c: (c.recovery, c.fec_k, c.fec_r),
        "sequencing": lambda c: (c.sequencing,),
        "delivery": lambda c: (c.delivery,),
        "jitter": lambda c: (c.jitter,),
        "buffer": lambda c: (c.buffer,),
    }

    def reconfigure(self, session: TKOSession, new_cfg: SessionConfig) -> List[str]:
        """Morph a live session toward ``new_cfg``.

        Returns the list of slots that were segued.  Parameter-only changes
        (pacing rate, playout depth, window size) are applied in place —
        the paper's "adjust the SCS" action — while mechanism changes go
        through segue with state handoff.
        """
        old_cfg = session.cfg
        segued: List[str] = []
        for slot in SLOTS:
            ident = self._SLOT_IDENTITY[slot]
            if ident(old_cfg) == ident(new_cfg):
                continue
            # cheap in-place adjustments that avoid a swap
            if slot == "transmission" and old_cfg.transmission == new_cfg.transmission:
                continue  # rate retune handled below via update_config hook
            replacement = build_mechanism(
                slot,
                new_cfg,
                group=getattr(session.context.delivery, "group", None),
                members=getattr(session.context.delivery, "destinations", lambda: [])(),
            )
            session.segue(slot, replacement)
            segued.append(slot)
        # parameter retunes on surviving mechanisms
        session.update_config(new_cfg)
        tx = session.context.transmission
        if new_cfg.rate_pps is not None and hasattr(tx, "set_rate"):
            tx.set_rate(new_cfg.rate_pps)
        jit = session.context.jitter
        if new_cfg.jitter == "playout" and hasattr(jit, "set_delay"):
            jit.set_delay(new_cfg.playout_delay)
        session.pump()
        return segued
