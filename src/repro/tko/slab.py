"""Refcounted slab payload buffers for the bytes plane.

Pooled PDU shells (:mod:`repro.tko.pdu`) removed allocator churn from the
*control* structures; this module does the same for *payload* storage.  A
:class:`SlabArena` bump-allocates variable-size regions out of large
reusable ``bytearray`` slabs and hands them out as :class:`SlabLease`\\ s —
refcounted claims that :class:`~repro.tko.message.TKOMessage` propagates
through its zero-copy operations (``clone``/``split``/``take``/``concat``).
When the last lease on a slab is released the whole slab returns to the
arena's free list, so steady-state traffic stores payload bytes with zero
allocator traffic and zero copies beyond the single store.

Ownership discipline (documented in docs/performance.md):

* whoever calls :meth:`SlabArena.store` owns the returned lease and must
  either attach it to a message (``TKOMessage.attach_lease`` — ownership
  transfer) or :meth:`~SlabLease.release` it on every failure path;
* zero-copy message ops retain on share and the terminal points —
  ``materialize()`` and ``PduPool.recycle`` — release;
* a leaked lease is *safe*: the slab simply never returns to the free
  list and Python's GC reclaims it once the views die.  Premature release
  is the only true hazard, same contract as the PDU pool.

The arena is deliberately not thread-safe; each transport endpoint owns
one (the sim substrate shares payload by reference and never needs one).
"""

from __future__ import annotations

from typing import Optional, Union

#: default slab capacity — comfortably above common path MTUs so a slab
#: amortizes tens of datagram payloads before sealing
DEFAULT_SLAB_SIZE = 64 * 1024


class _Slab:
    """One reusable buffer: a bump pointer plus a live-lease count."""

    __slots__ = ("buf", "view", "offset", "refs", "standard")

    def __init__(self, size: int, standard: bool) -> None:
        self.buf = bytearray(size)
        self.view = memoryview(self.buf)
        self.offset = 0
        self.refs = 0
        #: arena-standard size (eligible for the free list); oversize
        #: one-shot slabs are dropped to the GC on release instead
        self.standard = standard


class SlabLease:
    """A refcounted claim on one region of one slab.

    ``view`` is the region's ``memoryview``; it stays valid until the
    final :meth:`release`.  ``retain``/``release`` are idempotent-safe in
    the same way as pooled PDUs: releasing an already-dead lease is inert.
    """

    __slots__ = ("arena", "slab", "view", "refs")

    def __init__(self, arena: "SlabArena", slab: Optional[_Slab],
                 view: memoryview) -> None:
        self.arena = arena
        self.slab = slab
        self.view = view
        self.refs = 1

    def retain(self) -> None:
        if self.slab is not None:
            self.refs += 1

    def release(self) -> None:
        slab = self.slab
        if slab is None:
            return
        self.refs -= 1
        if self.refs <= 0:
            self.slab = None
            self.arena._lease_done(slab)

    @property
    def live(self) -> bool:
        return self.slab is not None


class SlabArena:
    """Bump allocator over recycled slabs.

    Stats are plain attributes so benchmarks and leak checks can assert
    balance: a quiesced endpoint must satisfy
    ``leases_released == leases_issued`` (and then every standard slab is
    either current, free, or GC'd).
    """

    def __init__(self, slab_size: int = DEFAULT_SLAB_SIZE,
                 max_free: int = 8) -> None:
        if slab_size < 1:
            raise ValueError("slab size must be >= 1")
        self.slab_size = int(slab_size)
        self.max_free = int(max_free)
        self._current: Optional[_Slab] = None
        self._free: list[_Slab] = []
        self.slabs_built = 0
        self.slabs_recycled = 0
        self.leases_issued = 0
        self.leases_released = 0
        self.bytes_stored = 0

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> SlabLease:
        """Claim a writable ``nbytes`` region; the caller fills it."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        self.leases_issued += 1
        self.bytes_stored += nbytes
        if nbytes == 0:
            # inert lease: no slab, refcounting is a no-op; born released
            # so issued/released stay balanced for leak checks
            self.leases_released += 1
            lease = SlabLease(self, None, memoryview(b""))
            lease.refs = 0
            return lease
        if nbytes > self.slab_size:
            # oversize one-shot slab, never pooled
            slab = _Slab(nbytes, standard=False)
            self.slabs_built += 1
            slab.offset = nbytes
            slab.refs = 1
            return SlabLease(self, slab, slab.view)
        slab = self._current
        if slab is None or slab.offset + nbytes > self.slab_size:
            slab = self._open_slab()
        view = slab.view[slab.offset:slab.offset + nbytes]
        slab.offset += nbytes
        slab.refs += 1
        return SlabLease(self, slab, view)

    def store(self, data: Union[bytes, bytearray, memoryview]) -> SlabLease:
        """Copy ``data`` into the arena (the bytes plane's *one* copy)."""
        lease = self.alloc(len(data))
        if len(data):
            lease.view[:] = data
        return lease

    # ------------------------------------------------------------------
    @property
    def live_leases(self) -> int:
        return self.leases_issued - self.leases_released

    def _open_slab(self) -> _Slab:
        # seal the old current; if its leases already all died it goes
        # straight back to the free list
        old = self._current
        if old is not None and old.refs == 0:
            self._recycle(old)
        if self._free:
            slab = self._free.pop()
            self.slabs_recycled += 1
        else:
            slab = _Slab(self.slab_size, standard=True)
            self.slabs_built += 1
        self._current = slab
        return slab

    def _lease_done(self, slab: _Slab) -> None:
        self.leases_released += 1
        slab.refs -= 1
        if slab.refs > 0:
            return
        if slab is self._current:
            # still open for bump allocation: rewind instead of sealing
            slab.offset = 0
            return
        if slab.standard:
            self._recycle(slab)

    def _recycle(self, slab: _Slab) -> None:
        slab.offset = 0
        if len(self._free) < self.max_free:
            self._free.append(slab)
