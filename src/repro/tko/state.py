"""Shared session state: sender queue, receive window, RTT, statistics.

These objects live in the :class:`~repro.tko.session.TKOSession` and are
*shared by* the mechanisms plugged into its context.  Keeping protocol
state here — not inside mechanism instances — is what makes *segue*
(run-time mechanism replacement) loss-free: swapping go-back-N for
selective repeat replaces the policy object while the outstanding-PDU
queue, sequence numbers, and receive buffer persist untouched (paper
§4.2.2; the MSP "on-the-fly change without loss of data" property).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tko.pdu import PDU


# ----------------------------------------------------------------------
@dataclass
class SendEntry:
    """Bookkeeping for one unacknowledged DATA PDU."""

    pdu: PDU
    first_sent: float
    last_sent: float
    retries: int = 0
    #: True when every current destination has selectively acknowledged it
    sacked: bool = False
    #: hosts that have SACKed this sequence (multicast aggregation)
    sacked_by: set = field(default_factory=set)


class SenderState:
    """Sequence-number space and unacknowledged queue (sender side)."""

    def __init__(self) -> None:
        self.snd_nxt = 0
        self.snd_una = 0
        self.outstanding: "OrderedDict[int, SendEntry]" = OrderedDict()
        self.peer_window: Optional[int] = None

    def next_seq(self) -> int:
        seq = self.snd_nxt
        self.snd_nxt += 1
        return seq

    def outstanding_count(self) -> int:
        return len(self.outstanding)

    def track(self, entry: SendEntry) -> None:
        self.outstanding[entry.pdu.seq] = entry

    def release(self, seq: int) -> Optional[SendEntry]:
        entry = self.outstanding.pop(seq, None)
        if entry is not None:
            self.snd_una = min(self.outstanding) if self.outstanding else self.snd_nxt
        return entry


# ----------------------------------------------------------------------
class RttEstimator:
    """Jacobson/Karels smoothed RTT with exponential timeout backoff.

    Karn's rule (no samples from retransmitted PDUs) is enforced by the
    caller: the session only feeds samples for entries with zero retries.
    """

    ALPHA = 0.125
    BETA = 0.25
    K = 4.0
    #: timer granularity floor (Jacobson's G): without it a deterministic
    #: path drives rttvar→0 and the timeout collapses onto srtt, making
    #: the sender's own queueing look like loss
    G = 0.01

    def __init__(self, rto_initial: float = 0.5, rto_min: float = 0.1, rto_max: float = 60.0) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto_min = rto_min
        self.rto_max = rto_max
        self._rto = rto_initial
        self._backoff = 1.0
        self.samples = 0

    def update(self, sample: float) -> None:
        """Fold one round-trip measurement into the estimate."""
        if sample < 0:
            raise ValueError("RTT sample cannot be negative")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += self.ALPHA * err
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
        self._rto = self.srtt + max(self.K * self.rttvar, self.G)
        self._backoff = 1.0
        self.samples += 1

    def backoff(self) -> None:
        """Double the effective timeout after a retransmission timeout."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    def reseed(self, rto_initial: float) -> None:
        """Discard the estimate and start over from ``rto_initial``.

        Used on route failover: the old path's smoothed RTT is meaningless
        on the new one (terrestrial→satellite is a 1000× jump), and keeping
        it makes every in-flight PDU look lost until backoff catches up —
        or worse, burns the give-up budget before the first new-path ACK.
        """
        self.srtt = None
        self.rttvar = 0.0
        self._rto = rto_initial
        self._backoff = 1.0
        self.samples = 0

    def note_progress(self) -> None:
        """Clear the backoff multiplier: new data was acknowledged.

        Karn's rule withholds *samples* from retransmitted PDUs, which
        during a loss burst would leave the timeout stuck at its backed-off
        ceiling forever; forward progress is evidence the path works, so
        the multiplier (not the estimate) is reset.
        """
        self._backoff = 1.0

    @property
    def rto(self) -> float:
        return float(min(self.rto_max, max(self.rto_min, self._rto * self._backoff)))


# ----------------------------------------------------------------------
class ReceiveWindow:
    """Receive-side sequence tracking, reorder buffer, duplicate filter.

    Policy flags (accept out-of-order / ordered release / dedup) are passed
    per call because they belong to the *mechanisms* currently installed —
    a segue changes behaviour instantly without copying buffered PDUs.
    """

    def __init__(self) -> None:
        self.rcv_nxt = 0
        #: seq -> PDU (ordered mode) or None marker (unordered bookkeeping)
        self.buffer: Dict[int, Optional[PDU]] = {}
        self.duplicates = 0
        self.discarded_ooo = 0

    def buffered_seqs(self) -> List[int]:
        return list(self.buffer.keys())

    def accept(
        self,
        pdu: PDU,
        accept_ooo: bool,
        ordered: bool,
        dedup: bool,
    ) -> Tuple[List[PDU], bool, bool]:
        """Process an arriving DATA PDU.

        Returns ``(deliverable, accepted, gap)``:

        * ``deliverable`` — PDUs to hand upward *now*, in delivery order;
        * ``accepted`` — False when the PDU was discarded (GBN out-of-order
          policy or duplicate suppression);
        * ``gap`` — True when the arrival exposed missing predecessors
          (the duplicate-ACK trigger).
        """
        seq = pdu.seq
        if seq < self.rcv_nxt or seq in self.buffer:
            self.duplicates += 1
            if dedup:
                return [], False, False
            # duplicate tolerated: deliver again, no state change
            return [pdu], True, False
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            released: List[PDU] = [pdu]
            while self.rcv_nxt in self.buffer:
                held = self.buffer.pop(self.rcv_nxt)
                if held is not None:
                    released.append(held)
                self.rcv_nxt += 1
            if not ordered:
                # out-of-order PDUs were already delivered on arrival
                released = [pdu]
            return released, True, False
        # seq > rcv_nxt: a gap
        if not accept_ooo:
            self.discarded_ooo += 1
            return [], False, True
        self.buffer[seq] = pdu if ordered else None
        if ordered:
            return [], True, True
        return [pdu], True, True

    def skip_gap(self) -> List[PDU]:
        """Abandon the missing prefix: jump ``rcv_nxt`` to the first
        buffered sequence and release the contiguous run from there.

        Used by ordered delivery *without* a retransmitting recovery
        scheme (e.g. ordered video over FEC): a gap that FEC could not
        repair must not stall the stream forever.
        """
        if not self.buffer:
            return []
        self.rcv_nxt = min(self.buffer)
        released: List[PDU] = []
        while self.rcv_nxt in self.buffer:
            held = self.buffer.pop(self.rcv_nxt)
            if held is not None:
                released.append(held)
            self.rcv_nxt += 1
        return released


# ----------------------------------------------------------------------
class Reassembler:
    """Fragment reassembly: (msg_id, frag_index/frag_count) → messages."""

    def __init__(self) -> None:
        self._partial: Dict[int, Dict[int, PDU]] = {}

    def add(self, pdu: PDU) -> Optional[List[PDU]]:
        """Fold in a fragment; returns the full fragment list when the
        message is complete, else None."""
        if pdu.frag_count <= 1:
            return [pdu]
        parts = self._partial.setdefault(pdu.msg_id, {})
        parts[pdu.frag_index] = pdu
        if len(parts) == pdu.frag_count:
            del self._partial[pdu.msg_id]
            return [parts[i] for i in range(pdu.frag_count)]
        return None

    def drop_partial(self, msg_id: int) -> None:
        self._partial.pop(msg_id, None)

    @property
    def partial_count(self) -> int:
        return len(self._partial)


# ----------------------------------------------------------------------
@dataclass
class SessionStats:
    """Whitebox per-session counters (UNITES' instrumentation surface)."""

    # traffic
    pdus_sent: int = 0
    pdus_received: int = 0
    data_bytes_sent: int = 0
    data_bytes_delivered: int = 0
    wire_bytes_sent: int = 0
    msgs_sent: int = 0
    msgs_delivered: int = 0
    # reliability
    retransmissions: int = 0
    fast_retransmits: int = 0
    control_retransmissions: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    parity_sent: int = 0
    fec_recoveries: int = 0
    # errors & filtering
    checksum_rejections: int = 0
    undetected_errors: int = 0
    corrupted_delivered: int = 0
    buffer_drops: int = 0
    gap_skips: int = 0
    late_arrivals: int = 0
    # lifecycle
    opened_at: Optional[float] = None
    established_at: Optional[float] = None
    closed_at: Optional[float] = None
    reconfigurations: int = 0
    aborted: Optional[str] = None
    # latency accounting (message-level, send → app delivery)
    latency_sum: float = 0.0
    latency_sq_sum: float = 0.0
    latency_max: float = 0.0
    latency_samples: int = 0

    def record_latency(self, latency: float) -> None:
        self.latency_sum += latency
        self.latency_sq_sum += latency * latency
        self.latency_max = max(self.latency_max, latency)
        self.latency_samples += 1

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.latency_samples if self.latency_samples else 0.0

    @property
    def jitter(self) -> float:
        """Standard deviation of delivery latency (the paper's definition:
        "the variance in the delay" — reported as its square root for
        unit consistency)."""
        n = self.latency_samples
        if n < 2:
            return 0.0
        mean = self.latency_sum / n
        var = max(0.0, self.latency_sq_sum / n - mean * mean)
        return var ** 0.5

    @property
    def connection_setup_time(self) -> Optional[float]:
        if self.opened_at is None or self.established_at is None:
            return None
        return self.established_at - self.opened_at
