"""TKO — Transport Kernel Objects (paper §4.2).

The two-level framework of Figure 4:

* the **protocol architecture** — medium-granularity classes insulating the
  transport system from the OS: :class:`~repro.tko.event.TKOEvent`
  (timers), :class:`~repro.tko.message.TKOMessage` (zero-copy buffers),
  :class:`~repro.tko.protocol.TKOProtocol` (protocol graph, mux/demux),
  :class:`~repro.tko.session.TKOSession`;
* the **session architecture** — fine-grain session mechanisms held in a
  :class:`~repro.tko.context.TKOContext` dispatch table, composed and
  instantiated by the :class:`~repro.tko.synthesizer.TKOSynthesizer` from a
  session configuration specification, with run-time rebinding via *segue*
  and a cache of static/reconfigurable templates
  (:mod:`repro.tko.templates`).
"""

from repro.tko.config import SessionConfig
from repro.tko.event import TKOEvent
from repro.tko.message import CopyMeter, Header, TKOMessage
from repro.tko.pdu import PDU, PduType
from repro.tko.protocol import TKOProtocol
from repro.tko.session import TKOSession
from repro.tko.context import TKOContext
from repro.tko.synthesizer import TKOSynthesizer
from repro.tko.templates import TemplateCache

__all__ = [
    "SessionConfig",
    "TKOEvent",
    "TKOMessage",
    "Header",
    "CopyMeter",
    "PDU",
    "PduType",
    "TKOProtocol",
    "TKOSession",
    "TKOContext",
    "TKOSynthesizer",
    "TemplateCache",
]
