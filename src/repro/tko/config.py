"""Session configuration: the executable half of the SCS.

MANTTS' *Session Configuration Specification* (Stage II of Figure 2) is a
"blueprint that specifies a set of protocol mechanisms".  ``SessionConfig``
is that blueprint: one field per mechanism slot of Figure 5 plus the
parameters Table 2 lists as negotiable (window advertisements, segment
size, timer settings, buffer representation...).

The TKO synthesizer consumes a ``SessionConfig``; MANTTS produces one from
a transport service class and the observed network state.  Configs are
hashable via :meth:`signature` so the template cache can recognise
commonly requested SCSs (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

CONNECTION_CHOICES = ("implicit", "explicit-2way", "explicit-3way")
TRANSMISSION_CHOICES = (
    "none",
    "stop-and-wait",
    "sliding-window",
    "rate",
    "window-rate",
    "tcp-aimd",  # baseline: slow-start + AIMD (repro.baselines.tcp_like)
)
DETECTION_CHOICES = ("none", "checksum", "crc32")
PLACEMENT_CHOICES = ("header", "trailer")
ACK_CHOICES = ("none", "cumulative", "delayed", "selective")
RECOVERY_CHOICES = ("none", "gbn", "sr", "fec-xor", "fec-rs")
SEQUENCING_CHOICES = ("none", "ordered", "ordered-dedup")
DELIVERY_CHOICES = ("unicast", "multicast")
JITTER_CHOICES = ("none", "playout")
BUFFER_CHOICES = ("fixed", "variable")
BINDING_CHOICES = ("dynamic", "reconfigurable", "static")


@dataclass(frozen=True)
class SessionConfig:
    """Complete mechanism selection + parameters for one session."""

    # --- mechanism slots (Figure 5 hierarchies) -----------------------
    connection: str = "explicit-3way"
    transmission: str = "sliding-window"
    detection: str = "checksum"
    checksum_placement: str = "trailer"
    ack: str = "cumulative"
    recovery: str = "gbn"
    sequencing: str = "ordered-dedup"
    delivery: str = "unicast"
    jitter: str = "none"
    buffer: str = "variable"

    # --- parameters (Table 2's negotiable parameters) ------------------
    window: int = 16                      #: flow-control window, PDUs
    rate_pps: Optional[float] = None      #: rate-control ceiling (pkts/s)
    segment_size: Optional[int] = None    #: None = derive from path MTU
    fec_k: int = 4                        #: data PDUs per FEC group
    fec_r: int = 1                        #: parity PDUs per FEC group
    playout_delay: float = 0.08           #: jitter-buffer depth, seconds
    gap_timeout: float = 0.25             #: skip-missing timeout for ordered
                                          #: delivery without retransmission
    rto_initial: float = 0.5              #: initial retransmission timeout
    rto_min: float = 0.1
    ack_delay: float = 0.02               #: delayed-ACK hold time
    priority: bool = False                #: request network priority class
    compact_headers: bool = True          #: word-aligned efficient format
    max_retries: int = 8                  #: give-up threshold

    # --- implementation binding (§4.2.2 customization) -----------------
    binding: str = "dynamic"

    def __post_init__(self) -> None:
        checks = [
            ("connection", CONNECTION_CHOICES),
            ("transmission", TRANSMISSION_CHOICES),
            ("detection", DETECTION_CHOICES),
            ("checksum_placement", PLACEMENT_CHOICES),
            ("ack", ACK_CHOICES),
            ("recovery", RECOVERY_CHOICES),
            ("sequencing", SEQUENCING_CHOICES),
            ("delivery", DELIVERY_CHOICES),
            ("jitter", JITTER_CHOICES),
            ("buffer", BUFFER_CHOICES),
            ("binding", BINDING_CHOICES),
        ]
        for name, allowed in checks:
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(f"{name}={value!r} not one of {allowed}")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.rate_pps is not None and self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.fec_k < 1 or self.fec_r < 1:
            raise ValueError("FEC group must have k>=1 data and r>=1 parity")
        if self.recovery in ("gbn", "sr") and self.ack == "none":
            raise ValueError(f"recovery={self.recovery!r} requires an ACK scheme")
        if self.recovery == "sr" and self.ack != "selective":
            raise ValueError("selective repeat requires selective ACKs")
        if self.transmission in ("stop-and-wait", "sliding-window", "window-rate", "tcp-aimd") and self.ack == "none":
            raise ValueError(
                f"transmission={self.transmission!r} needs ACKs to open the window"
            )
        if self.delivery == "multicast" and self.connection != "implicit":
            raise ValueError(
                "multicast sessions use implicit connection management "
                "(per-member explicit handshakes are a MANTTS concern)"
            )
        if self.playout_delay < 0 or self.ack_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.segment_size is not None and self.segment_size < 64:
            raise ValueError("segment_size must be >= 64 bytes")

    # ------------------------------------------------------------------
    def signature(self) -> Tuple:
        """Hashable identity used as the template-cache key.

        Everything that affects the synthesized mechanism set participates;
        purely numeric tuning knobs that templates re-parameterise
        (timer values) are excluded so near-identical requests share a
        template, which is what makes the cache effective (§4.2.2).
        """
        return (
            self.connection,
            self.transmission,
            self.detection,
            self.checksum_placement,
            self.ack,
            self.recovery,
            self.sequencing,
            self.delivery,
            self.jitter,
            self.buffer,
            self.priority,
            self.compact_headers,
            self.binding,
        )

    def with_(self, **overrides) -> "SessionConfig":
        """A modified copy (configs are immutable)."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """JSON-safe representation (for negotiation signalling)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        return cls(**data)

    def describe(self) -> str:
        """One-line human-readable summary for logs and reports."""
        parts = [
            f"conn={self.connection}",
            f"tx={self.transmission}(w={self.window}"
            + (f",r={self.rate_pps:.0f}pps" if self.rate_pps else "")
            + ")",
            f"det={self.detection}@{self.checksum_placement}",
            f"ack={self.ack}",
            f"rec={self.recovery}",
            f"seq={self.sequencing}",
            f"dlv={self.delivery}",
            f"jit={self.jitter}",
            f"bind={self.binding}",
        ]
        return " ".join(parts)
