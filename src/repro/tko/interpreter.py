"""The protocol interpreter's cost model and binding styles.

Stage III's output is "an executable session object representation that
guides the actions of an interpreter that performs protocol processing
activities on PDUs" (§4.1.1).  Here the interpreter's *work* is modelled
as instruction counts charged to the host CPU; the *binding style* models
the customization trade-off of §4.2.2:

* ``dynamic``   — a freshly synthesized configuration: every mechanism
  call goes through the dispatch table (full virtual-call indirection);
* ``reconfigurable`` — a cached reconfigurable template: bindings are
  pre-resolved but still indirect enough to allow segue (reduced cost);
* ``static``    — a fully customized template: calls are inline-expanded,
  zero indirection — and segue is *impossible* (the template is
  "guaranteed not to change"), which the session enforces.

Each customized static template also carries a code-size estimate so the
template cache can report the "code bloat" cost of inline expansion that
the paper borrows from the Synthesis kernel discussion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.pdu import PDU
    from repro.tko.session import TKOSession

#: indirection multiplier per binding style (× virtual_dispatch cost)
BINDING_FACTOR = {"dynamic": 1.0, "reconfigurable": 0.4, "static": 0.0}

#: estimated machine-code bytes per inline-expanded mechanism (static only)
CODE_BYTES_PER_MECHANISM = 1800

#: network-layer encapsulation below the transport PDU, bytes
NETWORK_HEADER_BYTES = 24

#: context slots whose mechanisms touch every outgoing DATA PDU — this is
#: also the compiled pipeline's send-stage order
SEND_SLOTS = ("connection", "transmission", "detection", "recovery",
              "sequencing", "delivery", "buffer")
#: slots touching every incoming DATA PDU (receive-stage order)
RECV_SLOTS = ("connection", "detection", "recovery", "sequencing",
              "delivery", "jitter", "buffer")


class CostModel:
    """Computes the per-PDU instruction charge for one session."""

    SEND_SLOTS = SEND_SLOTS
    RECV_SLOTS = RECV_SLOTS

    def __init__(self, session: "TKOSession") -> None:
        self.session = session
        self.factor = BINDING_FACTOR[session.cfg.binding]

    # ------------------------------------------------------------------
    def send_charge(self, pdu: "PDU") -> Tuple[float, float]:
        """(critical_path, deferrable) instructions for transmitting ``pdu``.

        The deferrable component is the trailer-placed checksum: with the
        check value at the end of the PDU it is computed *while* earlier
        bytes are already being serialized, so it consumes CPU without
        delaying the transmission start (§2.2(C) fn. 2).
        """
        s = self.session
        ctx = s.context
        costs = s.host.cpu.costs
        critical = float(costs.layer_fixed)
        deferred = 0.0
        dispatches = 0
        for slot in self.SEND_SLOTS:
            mech = ctx.get(slot)
            c = mech.send_cost(pdu)
            if slot == "detection" and mech.overlaps_tx:
                deferred += c
            else:
                critical += c
            dispatches += mech.DISPATCH_SEND
        critical += dispatches * costs.virtual_dispatch * self.factor
        return critical, deferred

    def recv_charge(self, pdu: "PDU") -> Tuple[float, float]:
        """(critical_path, deferrable) instructions for receiving ``pdu``.

        Symmetric to :meth:`send_charge`: a trailer-placed checksum is
        verified incrementally while the PDU's bytes are still being
        consumed from the interface, so its per-byte cost burns CPU
        without delaying delivery upward; a header-placed checksum must
        complete before the payload may be trusted.
        """
        s = self.session
        ctx = s.context
        costs = s.host.cpu.costs
        parse = (
            costs.header_parse_aligned if pdu.compact else costs.header_parse_unaligned
        )
        critical = float(costs.layer_fixed + parse)
        deferred = 0.0
        dispatches = 0
        for slot in self.RECV_SLOTS:
            mech = ctx.get(slot)
            c = mech.recv_cost(pdu)
            if slot == "detection" and mech.overlaps_tx:
                deferred += c
            else:
                critical += c
            dispatches += mech.DISPATCH_RECV
        critical += dispatches * costs.virtual_dispatch * self.factor
        return critical, deferred

    def control_charge(self, pdu: "PDU") -> float:
        """Instructions for a control PDU (handshake/ACK/signalling)."""
        costs = self.session.host.cpu.costs
        parse = (
            costs.header_parse_aligned if pdu.compact else costs.header_parse_unaligned
        )
        return float(costs.layer_fixed + parse)

    # ------------------------------------------------------------------
    def breakdown(self, pdu: "PDU") -> dict:
        """Per-mechanism instruction breakdown for one PDU, both paths.

        The paper's whitebox metric "the number of instructions required
        to execute a protocol function" (§4.3), resolved per Figure 5
        slot.  Keys are slot names plus ``os-fixed`` (layer bookkeeping +
        header parse) and ``dispatch`` (binding indirection).
        """
        s = self.session
        costs = s.host.cpu.costs
        out: dict = {}
        parse = (
            costs.header_parse_aligned if pdu.compact else costs.header_parse_unaligned
        )
        out["os-fixed"] = 2.0 * costs.layer_fixed + parse
        dispatches = 0
        for slot in set(self.SEND_SLOTS) | set(self.RECV_SLOTS):
            mech = s.context.get(slot)
            total = 0.0
            if slot in self.SEND_SLOTS:
                total += mech.send_cost(pdu)
                dispatches += mech.DISPATCH_SEND
            if slot in self.RECV_SLOTS:
                total += mech.recv_cost(pdu)
                dispatches += mech.DISPATCH_RECV
            out[slot] = total
        out["dispatch"] = dispatches * costs.virtual_dispatch * self.factor
        return out

    def code_size(self) -> int:
        """Estimated customized-code bytes for this configuration.

        Nonzero only for static templates, which inline-expand one copy of
        every mechanism (the time/space trade-off).
        """
        if self.session.cfg.binding != "static":
            return 0
        return CODE_BYTES_PER_MECHANISM * len(self.SEND_SLOTS)
