"""TKO_Message: zero-copy message buffers (paper §4.2.1).

A message is logically a *header region* (a stack of structured headers,
pushed and popped in O(1) as the message moves between layers) and a *data
region* (a list of immutable byte segments shared by reference).  The
operations the paper names map directly:

=================  ====================================================
paper operation     here
=================  ====================================================
``push``            :meth:`TKOMessage.push` — prepend a header, no copy
``pop``             :meth:`TKOMessage.pop` — strip a header, no copy
create/copy         :meth:`TKOMessage.clone` — lazy, shares segments
split               :meth:`TKOMessage.split` — fragmentation, no copy
``concat``          :meth:`TKOMessage.concat` — reassembly, no copy
=================  ====================================================

The only operation that touches payload bytes is :meth:`materialize`
(flatten to one contiguous buffer) — exactly the memory-to-memory copy the
paper identifies as a dominant overhead.  Every copy is recorded on the
message's :class:`CopyMeter` so experiments can count bytes copied under
zero-copy vs naive buffering disciplines (experiment E8).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

_msg_ids = itertools.count(1)


class CopyMeter:
    """Accumulates the cost of real byte copies.

    One meter is typically shared by all messages on a host so that the
    host's per-byte copy cost can be charged from a single place.
    """

    __slots__ = ("copies", "bytes_copied")

    def __init__(self) -> None:
        self.copies = 0
        self.bytes_copied = 0

    def record(self, nbytes: int) -> None:
        self.copies += 1
        self.bytes_copied += nbytes

    def reset(self) -> None:
        self.copies = 0
        self.bytes_copied = 0


@dataclass
class Header:
    """One protocol header in the header region.

    ``size`` is the on-wire byte count; ``aligned`` records whether the
    layout is fixed-size/word-aligned (the paper's "efficient control
    format", §2.2(C) fn. 2) which determines the parse cost charged by the
    receiving stack.
    """

    name: str
    size: int
    fields: Dict[str, Any] = field(default_factory=dict)
    aligned: bool = True

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("header size cannot be negative")


class TKOMessage:
    """A message with O(1) header manipulation and shared data segments."""

    __slots__ = ("id", "_headers", "_segments", "meter", "_leases")

    def __init__(
        self,
        data: bytes | bytearray | memoryview | Iterable[memoryview] = b"",
        meter: Optional[CopyMeter] = None,
    ) -> None:
        self.id = next(_msg_ids)
        self._headers: List[Header] = []
        if isinstance(data, (bytes, bytearray, memoryview)):
            mv = memoryview(bytes(data)) if not isinstance(data, memoryview) else data
            self._segments: List[memoryview] = [mv] if len(mv) else []
        else:
            self._segments = [s for s in data if len(s)]
        self.meter = meter if meter is not None else CopyMeter()
        #: slab leases backing the data segments (None for plain messages).
        #: Zero-copy ops retain on share; ``materialize`` and the PDU
        #: pool's ``recycle`` release.  See repro.tko.slab.
        self._leases: Optional[list] = None

    # ------------------------------------------------------------------
    # slab-lease ownership (see repro.tko.slab for the discipline)
    # ------------------------------------------------------------------
    def attach_lease(self, lease: Any) -> None:
        """Take ownership of a slab lease backing this message's segments.

        Ownership transfer: the caller's reference is *not* retained again;
        the message's terminal points will release it.
        """
        if self._leases is None:
            self._leases = [lease]
        else:
            self._leases.append(lease)

    def _adopt_leases_from(self, other: "TKOMessage") -> None:
        """Retain and share ``other``'s leases (used by zero-copy ops)."""
        if other._leases:
            for lease in other._leases:
                lease.retain()
            if self._leases is None:
                self._leases = list(other._leases)
            else:
                self._leases.extend(other._leases)

    def release_payload(self) -> None:
        """Drop this message's slab claims (idempotent).

        Called at terminal points — after the payload was flattened out of
        the slab, or when a pooled PDU shell carrying this message is
        recycled.  Plain (non-slab) messages are unaffected.
        """
        leases = self._leases
        if leases:
            self._leases = None
            for lease in leases:
                lease.release()

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def data_length(self) -> int:
        """Bytes in the data region."""
        return sum(len(s) for s in self._segments)

    @property
    def header_length(self) -> int:
        """Bytes of pushed headers."""
        return sum(h.size for h in self._headers)

    @property
    def length(self) -> int:
        """Total on-wire size."""
        return self.data_length + self.header_length

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # header region
    # ------------------------------------------------------------------
    def push(self, header: Header) -> None:
        """Prepend a header (innermost header is pushed last, popped first)."""
        self._headers.append(header)

    def pop(self) -> Header:
        """Strip and return the outermost header."""
        if not self._headers:
            raise IndexError("pop from message with no headers")
        return self._headers.pop()

    def peek(self) -> Optional[Header]:
        """The outermost header, or None."""
        return self._headers[-1] if self._headers else None

    @property
    def headers(self) -> Tuple[Header, ...]:
        """Outermost-last view of the header stack (read-only)."""
        return tuple(self._headers)

    # ------------------------------------------------------------------
    # data region: lazy operations
    # ------------------------------------------------------------------
    def clone(self) -> "TKOMessage":
        """Lazy copy: shares every data segment, duplicates header stack.

        Cost is O(#headers + #segments) with zero payload bytes moved —
        this is what lets a retransmission queue hold references to sent
        PDUs without doubling memory traffic.
        """
        m = TKOMessage((), meter=self.meter)
        m._segments = list(self._segments)
        m._headers = [Header(h.name, h.size, dict(h.fields), h.aligned) for h in self._headers]
        m._adopt_leases_from(self)
        return m

    def split(self, at: int) -> Tuple["TKOMessage", "TKOMessage"]:
        """Split the data region at byte offset ``at`` without copying.

        Headers stay with the left part (they describe the start of the
        message).  Used for fragmentation to the path MTU.
        """
        if not (0 <= at <= self.data_length):
            raise ValueError(f"split offset {at} outside data region")
        left_segs: List[memoryview] = []
        right_segs: List[memoryview] = []
        remaining = at
        for seg in self._segments:
            if remaining >= len(seg):
                left_segs.append(seg)
                remaining -= len(seg)
            elif remaining > 0:
                left_segs.append(seg[:remaining])
                right_segs.append(seg[remaining:])
                remaining = 0
            else:
                right_segs.append(seg)
        left = TKOMessage((), meter=self.meter)
        left._segments = left_segs
        left._headers = self._headers
        left._adopt_leases_from(self)
        right = TKOMessage((), meter=self.meter)
        right._segments = right_segs
        right._adopt_leases_from(self)
        return left, right

    def concat(self, other: "TKOMessage") -> None:
        """Append ``other``'s data region to this one (reassembly), no copy."""
        self._segments.extend(other._segments)
        self._adopt_leases_from(other)

    def extend(self, other: "TKOMessage") -> None:
        """Alias of :meth:`concat` (the paper's reassembly primitive)."""
        self.concat(other)

    def take(self, n: int) -> "TKOMessage":
        """Detach and return the first ``n`` data bytes as a new message."""
        left, right = self.split(n)
        # self keeps its own leases (right retained them in split); drop
        # the extra retain right acquired since right's list replaces ours
        if self._leases:
            for lease in self._leases:
                lease.release()
        self._leases = right._leases
        self._segments = right._segments
        self._headers = []
        return left

    # ------------------------------------------------------------------
    # the one real copy
    # ------------------------------------------------------------------
    def materialize(self) -> bytes:
        """Flatten the data region into contiguous bytes (a *real* copy).

        Records the traffic on the meter; the application does this once on
        final delivery, and naive (non-TKO) buffering does it at every
        layer boundary.
        """
        out = b"".join(bytes(s) for s in self._segments)
        self.meter.record(len(out))
        self._segments = [memoryview(out)] if out else []
        # the flattened copy no longer references slab storage
        self.release_payload()
        return out

    def write_into(self, dest: memoryview) -> int:
        """Copy the data region into ``dest`` (a single metered copy).

        The wire codec's staging path: segments stream straight into a
        preallocated encode buffer, skipping :meth:`materialize`'s
        intermediate ``bytes`` join.  Returns the byte count written.
        ``dest`` must be at least ``data_length`` long.  The message keeps
        its segments (and slab leases) — the caller owns the destination.
        """
        off = 0
        for seg in self._segments:
            n = len(seg)
            dest[off:off + n] = seg
            off += n
        self.meter.record(off)
        return off

    def copy_through(self) -> "TKOMessage":
        """Eager copy (the naive discipline): duplicates all payload bytes."""
        flat = b"".join(bytes(s) for s in self._segments)
        self.meter.record(len(flat))
        m = TKOMessage(flat, meter=self.meter)
        m._headers = [Header(h.name, h.size, dict(h.fields), h.aligned) for h in self._headers]
        return m

    # ------------------------------------------------------------------
    def segments_view(self) -> Tuple[memoryview, ...]:
        """Read-only view of the data segments (for copy-free scanning)."""
        return tuple(self._segments)

    def checksum16(self) -> int:
        """RFC-1071-style 16-bit ones-complement sum over the data region.

        Walks segments in place — no flattening, no intermediate ``bytes``
        — using the modular identity behind end-around-carry folding:
        since ``2**16 ≡ 1 (mod 0xFFFF)``, the folded sum of big-endian
        16-bit words equals the whole byte stream read as one big-endian
        integer, reduced mod ``0xFFFF`` (with the usual 0-vs-0xFFFF
        distinction for an all-zero stream).  ``int.from_bytes`` does the
        heavy lifting in C, which beats word-array summation at wire-PDU
        sizes.
        """
        m = 0
        nbytes = 0
        nonzero = False
        for seg in self._segments:
            n = len(seg)
            if not n:
                continue
            nbytes += n
            v = int.from_bytes(seg, "big")
            if v:
                nonzero = True
            elif not m:
                continue  # leading/interleaved zeros: 0 * 256**n stays 0
            if m:
                m = (m * pow(256, n, 0xFFFF) + v) % 0xFFFF
            else:
                m = v % 0xFFFF
        if nbytes & 1:
            m = (m << 8) % 0xFFFF  # odd tail: pad one zero byte on the right
        if nonzero and not m:
            m = 0xFFFF  # a non-empty sum folds to 0xFFFF, never to 0
        return (~m) & 0xFFFF

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hs = "/".join(h.name for h in reversed(self._headers)) or "-"
        return f"<TKOMessage#{self.id} hdr[{hs}]={self.header_length}B data={self.data_length}B>"
