"""TKO_Event: protocol timer objects (paper §4.2.1).

``TKO_Event`` objects "schedule themselves to expire one or more times,
may be cancelled, and are triggered to expire asynchronously by the
operating system's timer facility".  The simulation kernel's
:class:`repro.sim.timers.Timer` already implements exactly that contract
(``schedule`` / ``expire`` / ``cancel``, one-shot or periodic), so the TKO
class is a named specialization that additionally charges the host CPU for
timer-management work when bound to a host.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.host.cpu import Cpu
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


class TKOEvent(Timer):
    """A protocol timer that accounts its OS cost against the host CPU."""

    __slots__ = ("cpu",)

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[..., Any],
        *args: Any,
        interval: float = 0.0,
        periodic: bool = False,
        cpu: Optional[Cpu] = None,
    ) -> None:
        super().__init__(sim, fn, *args, interval=interval, periodic=periodic)
        self.cpu = cpu

    def schedule(self, interval: Optional[float] = None) -> None:
        """Arm the timer, charging one timer operation to the host CPU."""
        if self.cpu is not None:
            self.cpu.instructions_retired += self.cpu.costs.timer_op
        super().schedule(interval)

    def cancel(self) -> None:
        """Disarm, charging one timer operation when actually armed."""
        if self.cpu is not None and self.armed:
            self.cpu.instructions_retired += self.cpu.costs.timer_op
        super().cancel()
