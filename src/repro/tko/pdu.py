"""Transport protocol data units.

A ``PDU`` is the transport header + user data carried inside one network
frame.  The header layout is configurable along the axis the paper calls
"efficient control formats" (§2.2(C) fn. 2):

* **compact** — fixed-size, word-aligned fields: larger minimum size but
  cheap to parse (``header_parse_aligned``), and the checksum may live in
  the *trailer* so it can be computed while earlier bytes are already being
  clocked onto the wire;
* **legacy** — TCP-like variable options, unaligned fields: smaller for
  some packets but parsed at ``header_parse_unaligned`` cost, checksum in
  the header (precluding transmit/checksum overlap).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional

from repro.tko.message import Header, TKOMessage

_pdu_ids = itertools.count(1)


class PduType(enum.Enum):
    """Transport PDU types; control types ride the out-of-band channel."""

    DATA = "data"
    ACK = "ack"
    NACK = "nack"
    PARITY = "parity"        # FEC repair unit
    SYN = "syn"              # explicit connection request (carries config)
    SYN_ACK = "syn-ack"
    CONFIRM = "confirm"      # third leg of 3-way handshake
    FIN = "fin"
    FIN_ACK = "fin-ack"
    CONFIG = "config"        # reconfiguration / renegotiation signalling
    CONFIG_ACK = "config-ack"
    PROBE = "probe"          # network-monitor RTT probe
    PROBE_REPLY = "probe-reply"


#: PDU types processed on Figure 3's out-of-band control path.  FIN and
#: FIN-ACK are deliberately *not* here: teardown must stay ordered behind
#: the session's in-flight data (a priority-class FIN would overtake the
#: final data/parity PDUs in switch queues and close the peer early).
CONTROL_TYPES = frozenset(
    {
        PduType.SYN,
        PduType.SYN_ACK,
        PduType.CONFIRM,
        PduType.CONFIG,
        PduType.CONFIG_ACK,
        PduType.PROBE,
        PduType.PROBE_REPLY,
    }
)

#: word-aligned fixed header (compact format), bytes
COMPACT_HEADER_SIZE = 24
#: legacy variable header: base + options, bytes
LEGACY_HEADER_BASE = 20
LEGACY_OPTION_SIZE = 4
#: explicit checksum field appended as a trailer, bytes
TRAILER_CHECKSUM_SIZE = 4


class PDU:
    """One transport protocol data unit."""

    __slots__ = (
        "id",
        "ptype",
        "conn_id",
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "sack",
        "msg_id",
        "frag_index",
        "frag_count",
        "window",
        "timestamp",
        "options",
        "message",
        "compact",
        "checksum",
        "checksum_placement",
        "aux_size",
        "pooled",
        "_refs",
    )

    def __init__(
        self,
        ptype: PduType,
        conn_id: int,
        src_port: int = 0,
        dst_port: int = 0,
        seq: int = 0,
        ack: Optional[int] = None,
        sack: Optional[tuple] = None,
        msg_id: int = 0,
        frag_index: int = 0,
        frag_count: int = 1,
        window: int = 0,
        timestamp: float = 0.0,
        options: Optional[Dict[str, Any]] = None,
        message: Optional[TKOMessage] = None,
        compact: bool = True,
    ) -> None:
        self.id = next(_pdu_ids)
        self.ptype = ptype
        self.conn_id = conn_id
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.sack = sack
        self.msg_id = msg_id
        self.frag_index = frag_index
        self.frag_count = frag_count
        self.window = window
        self.timestamp = timestamp
        self.options = options or {}
        self.message = message
        self.compact = compact
        self.checksum: Optional[int] = None
        self.checksum_placement: Optional[str] = None
        #: extra on-wire header bytes (e.g. FEC group metadata on PARITY)
        self.aux_size = 0
        #: free-list bookkeeping; both fields are inert on unpooled PDUs
        self.pooled = False
        self._refs = 1

    # ------------------------------------------------------------------
    @property
    def header_size(self) -> int:
        """On-wire transport header bytes for this PDU."""
        if self.compact:
            size = COMPACT_HEADER_SIZE
        else:
            size = LEGACY_HEADER_BASE + LEGACY_OPTION_SIZE * len(self.options)
            if self.sack:
                size += LEGACY_OPTION_SIZE * len(self.sack)
        if self.checksum_placement == "trailer":
            size += TRAILER_CHECKSUM_SIZE
        return size + self.aux_size

    @property
    def data_size(self) -> int:
        return self.message.data_length if self.message is not None else 0

    @property
    def wire_size(self) -> int:
        """Total bytes this PDU occupies inside a frame."""
        return self.header_size + self.data_size

    @property
    def is_control(self) -> bool:
        return self.ptype in CONTROL_TYPES

    # ------------------------------------------------------------------
    # free-list reference counting — no-ops unless this PDU came from the
    # pool, so shared code paths can call them unconditionally
    # ------------------------------------------------------------------
    def retain(self) -> None:
        if self.pooled:
            self._refs += 1

    def release(self) -> None:
        if self.pooled:
            self._refs -= 1
            if self._refs <= 0:
                PDU_POOL.recycle(self)

    # ------------------------------------------------------------------
    def as_header(self) -> Header:
        """Render as a :class:`~repro.tko.message.Header` for the message."""
        return Header(
            name=f"tp-{self.ptype.value}",
            size=self.header_size,
            fields={"conn": self.conn_id, "seq": self.seq},
            aligned=self.compact,
        )

    def retransmit_clone(self) -> "PDU":
        """A fresh PDU carrying the same payload/identity for retransmission.

        The message is cloned lazily (zero payload copy) — the point of the
        TKO buffer design is that holding a retransmission queue is cheap.
        """
        p = PDU(
            self.ptype,
            self.conn_id,
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack,
            sack=self.sack,
            msg_id=self.msg_id,
            frag_index=self.frag_index,
            frag_count=self.frag_count,
            window=self.window,
            timestamp=self.timestamp,
            options=dict(self.options),
            message=self.message.clone() if self.message is not None else None,
            compact=self.compact,
        )
        p.checksum_placement = self.checksum_placement
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PDU#{self.id} {self.ptype.value} conn={self.conn_id} seq={self.seq}"
            f" ack={self.ack} {self.wire_size}B>"
        )


class PduPool:
    """A small free list of PDU shells (the §4.2.2 "lightweight" move:
    stop paying allocator + field-init cost on every DATA/ACK send).

    Recycled PDUs get a *fresh* id on re-acquisition, so id-keyed maps
    (receive buffers) can never confuse two incarnations of one shell.
    A premature ``release`` is the only hazard; leaks merely fall back to
    the garbage collector.
    """

    def __init__(self, max_free: int = 256) -> None:
        self._free: list = []
        self.max_free = max_free
        self.acquired = 0
        self.reused = 0
        #: shells whose last reference was dropped (leak check: a quiesced
        #: world must satisfy ``recycled == acquired - live holders``)
        self.recycled = 0

    def acquire(
        self,
        ptype: PduType,
        conn_id: int,
        src_port: int = 0,
        dst_port: int = 0,
        compact: bool = True,
    ) -> PDU:
        self.acquired += 1
        if self._free:
            self.reused += 1
            pdu = self._free.pop()
            pdu.id = next(_pdu_ids)
            pdu.ptype = ptype
            pdu.conn_id = conn_id
            pdu.src_port = src_port
            pdu.dst_port = dst_port
            pdu.seq = 0
            pdu.ack = None
            pdu.sack = None
            pdu.msg_id = 0
            pdu.frag_index = 0
            pdu.frag_count = 1
            pdu.window = 0
            pdu.timestamp = 0.0
            pdu.options = {}
            pdu.message = None
            pdu.compact = compact
            pdu.checksum = None
            pdu.checksum_placement = None
            pdu.aux_size = 0
        else:
            pdu = PDU(ptype, conn_id, src_port=src_port, dst_port=dst_port, compact=compact)
        pdu.pooled = True
        pdu._refs = 1
        return pdu

    def recycle(self, pdu: PDU) -> None:
        self.recycled += 1
        # un-flag first: any stray release() on a stale reference is inert
        pdu.pooled = False
        msg = pdu.message
        if msg is not None:
            # terminal point for slab-backed payloads: the shell's claim on
            # its slab region dies with the shell (clones retained their own)
            msg.release_payload()
        pdu.message = None
        pdu.options = {}
        if len(self._free) < self.max_free:
            self._free.append(pdu)

    def __len__(self) -> int:
        return len(self._free)


#: process-wide pool; sessions opt in per-PDU via ``TKOSession.make_pdu``
PDU_POOL = PduPool()
