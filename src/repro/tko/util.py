"""Small shared helpers for the TKO layer.

Kept deliberately tiny and dependency-free: these are utilities that
several TKO modules (and the synthesizer) need without reaching into each
other's private namespaces.
"""

from __future__ import annotations


def noop() -> None:
    """Target for CPU charges that have no functional follow-up.

    The interpreter models many activities (deferred trailer checksums,
    reconfiguration bookkeeping, instantiation work) whose *cost* matters
    but whose completion triggers nothing; they are submitted to the host
    CPU with this callback.
    """
