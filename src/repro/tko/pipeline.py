"""Compiling a mechanism stack into a flat, costed pipeline (§4.2.2).

The paper frames Stage III in the Synthesis/SELF tradition: the
synthesizer emits "an executable session object representation", not a
pile of objects consulted per packet.  ``CompiledPipeline`` is that
representation — the nine bound mechanisms flattened into

* an ordered tuple of :class:`~repro.mechanisms.base.StageSpec` per path
  (``SEND_SLOTS`` / ``RECV_SLOTS`` order), and
* **closed-form per-PDU charges**: for each path a fixed base, a per-byte
  coefficient, and a dispatch-indirection term, so the executor computes
  ``base + per_byte * n + dispatch`` instead of walking the slot table
  calling ``send_cost``/``recv_cost`` through dynamic dispatch.

The arithmetic is bit-identical to :class:`repro.tko.interpreter.CostModel`
by construction: every mechanism fixed/per-byte cost is an exact multiple
of 0.5 (their sum is exact in any order) and the single inexact operand —
``dispatches * virtual_dispatch * binding_factor`` — is added last, exactly
as the reference accumulates it.  Compiling therefore changes *wall* time
only, never simulated time.

Recompilation is cheap and scoped: ``segue`` re-invokes ``compile_stage``
for only the swapped slot and re-derives the scalars; a full recompile
happens only on ``update_config``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

from repro.netsim.frame import PRIO_HIGH, PRIO_NORMAL
from repro.tko.interpreter import BINDING_FACTOR, RECV_SLOTS, SEND_SLOTS
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms.base import StageSpec
    from repro.tko.session import TKOSession

#: transmission mechanisms whose window accounting needs the sender state
#: machine to track outstanding PDUs even when recovery never retransmits
_WINDOWED_TRANSMISSION = ("stop-and-wait", "sliding-window", "window-rate", "tcp-aimd")


class CompiledPipeline:
    """Immutable product of compiling one session's mechanism stack."""

    __slots__ = (
        "specs",
        "binding_factor",
        "send_base",
        "send_per_byte",
        "send_dispatch",
        "send_def_fixed",
        "send_def_per_byte",
        "recv_base_aligned",
        "recv_base_unaligned",
        "recv_per_byte",
        "recv_dispatch",
        "recv_def_fixed",
        "recv_def_per_byte",
        "control_aligned",
        "control_unaligned",
        "data_priority",
        "track_outstanding",
    )

    def __init__(self, session: "TKOSession", specs: Dict[str, "StageSpec"]) -> None:
        self.specs = dict(specs)
        cfg = session.cfg
        costs = session.host.cpu.costs
        factor = BINDING_FACTOR[cfg.binding]
        self.binding_factor = factor

        send_base = float(costs.layer_fixed)
        send_pb = 0.0
        send_disp = 0
        send_def_fixed = 0.0
        send_def_pb = 0.0
        for slot in SEND_SLOTS:
            spec = specs[slot]
            if slot == "detection" and spec.overlaps_tx:
                send_def_fixed += spec.send_fixed
                send_def_pb += spec.send_per_byte
            else:
                send_base += spec.send_fixed
                send_pb += spec.send_per_byte
            send_disp += spec.dispatch_send
        self.send_base = send_base
        self.send_per_byte = send_pb
        # identical expression shape to the interpreter so float rounding
        # matches bit-for-bit (left-assoc, factor multiplied last)
        self.send_dispatch = send_disp * costs.virtual_dispatch * factor
        self.send_def_fixed = send_def_fixed
        self.send_def_per_byte = send_def_pb

        recv_fixed = 0.0
        recv_pb = 0.0
        recv_disp = 0
        recv_def_fixed = 0.0
        recv_def_pb = 0.0
        for slot in RECV_SLOTS:
            spec = specs[slot]
            if slot == "detection" and spec.overlaps_tx:
                recv_def_fixed += spec.recv_fixed
                recv_def_pb += spec.recv_per_byte
            else:
                recv_fixed += spec.recv_fixed
                recv_pb += spec.recv_per_byte
            recv_disp += spec.dispatch_recv
        self.recv_base_aligned = (
            float(costs.layer_fixed + costs.header_parse_aligned) + recv_fixed
        )
        self.recv_base_unaligned = (
            float(costs.layer_fixed + costs.header_parse_unaligned) + recv_fixed
        )
        self.recv_per_byte = recv_pb
        self.recv_dispatch = recv_disp * costs.virtual_dispatch * factor
        self.recv_def_fixed = recv_def_fixed
        self.recv_def_per_byte = recv_def_pb

        self.control_aligned = float(costs.layer_fixed + costs.header_parse_aligned)
        self.control_unaligned = float(costs.layer_fixed + costs.header_parse_unaligned)

        self.data_priority = PRIO_HIGH if cfg.priority else PRIO_NORMAL
        self.track_outstanding = (
            session.context.recovery.retransmits
            or cfg.transmission in _WINDOWED_TRANSMISSION
        )

    # ------------------------------------------------------------------
    # closed-form charges (the per-PDU fast path)
    # ------------------------------------------------------------------
    def send_charge(self, nbytes: int):
        return (
            self.send_base + self.send_per_byte * nbytes + self.send_dispatch,
            self.send_def_fixed + self.send_def_per_byte * nbytes,
        )

    def recv_charge(self, nbytes: int, compact: bool):
        base = self.recv_base_aligned if compact else self.recv_base_unaligned
        return (
            base + self.recv_per_byte * nbytes + self.recv_dispatch,
            self.recv_def_fixed + self.recv_def_per_byte * nbytes,
        )

    def control_charge(self, compact: bool) -> float:
        return self.control_aligned if compact else self.control_unaligned

    def charge_bindings(self) -> Dict[str, object]:
        """The closed-form charge scalars as codegen closure bindings.

        The generated executor (:mod:`repro.tko.genexec`) folds these
        constants into its rendered send/recv closures; keeping the
        name → scalar mapping here means the fold can never drift from
        the charge expressions above.
        """
        return {
            "SB": self.send_base, "SPB": self.send_per_byte,
            "SD": self.send_dispatch, "DF": self.send_def_fixed,
            "DPB": self.send_def_per_byte, "PRIORITY": self.data_priority,
            "RBA": self.recv_base_aligned, "RBU": self.recv_base_unaligned,
            "RPB": self.recv_per_byte, "RD": self.recv_dispatch,
            "RDF": self.recv_def_fixed, "RDPB": self.recv_def_per_byte,
            "CA": self.control_aligned, "CU": self.control_unaligned,
        }

    def respec(self, session: "TKOSession", slot: str) -> "CompiledPipeline":
        """Recompile with only ``slot``'s stage re-derived (segue path)."""
        specs = dict(self.specs)
        specs[slot] = session.context.get(slot).compile_stage()
        return CompiledPipeline(session, specs)


def compile_stages(session: "TKOSession") -> Dict[str, "StageSpec"]:
    """Run every bound mechanism's compile hook (all nine slots)."""
    from repro.tko.context import SLOTS

    ctx = session.context
    return {slot: ctx.get(slot).compile_stage() for slot in SLOTS}


def compile_pipeline(
    session: "TKOSession",
    specs: Optional[Dict[str, "StageSpec"]] = None,
    reason: str = "synthesize",
) -> CompiledPipeline:
    """Compile ``session``'s mechanism stack, with UNITES accounting.

    ``specs`` may come from a cached template (a pipeline-cache *hit*); the
    scalars are still re-derived per session because they fold in binding
    style and per-host CPU cost tables.  All telemetry (span, compile
    counter, cache hit/miss counter, wall-time histogram) sits behind the
    ``TELEMETRY.enabled`` guard so the disabled-telemetry overhead bound
    holds.
    """
    if not _TELEMETRY.enabled:
        if specs is None:
            specs = compile_stages(session)
        return CompiledPipeline(session, specs)

    cached = specs is not None
    t0 = time.perf_counter()
    with _TELEMETRY.span(
        "pipeline:compile", "tko", conn=session.conn_id, reason=reason, cached=cached
    ):
        if specs is None:
            specs = compile_stages(session)
        pipe = CompiledPipeline(session, specs)
    m = _TELEMETRY.metrics
    m.counter(
        "pipeline_compiles_total",
        labels={"reason": reason},
        help="compiled-pipeline builds by trigger",
    ).inc()
    if reason == "synthesize":
        m.counter(
            "pipeline_cache_total",
            labels={"result": "hit" if cached else "miss"},
            help="compiled-pipeline template cache hits/misses",
        ).inc()
    m.histogram(
        "pipeline_compile_seconds",
        help="wall time to compile one session pipeline",
    ).observe(time.perf_counter() - t0)
    return pipe
