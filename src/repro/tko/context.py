"""TKO_Context: the per-session mechanism dispatch table (Figure 5).

"Each TKO_Context object contains a table of pointers to C++ abstract base
classes that define the session's behavior" — here, a dict from slot name
to the bound :class:`~repro.mechanisms.base.Mechanism` instance.  The
*segue* operation replaces one entry at run time with state handoff,
"permitting certain class object bindings to change dynamically" — the
contrast the paper draws with BSD's link-time-fixed protocol switch
tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Tuple

from repro.mechanisms.base import Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.session import TKOSession

#: the mechanism slots of Figure 5, in pipeline order
SLOTS = (
    "connection",
    "transmission",
    "detection",
    "ack",
    "recovery",
    "sequencing",
    "delivery",
    "jitter",
    "buffer",
)


class TKOContext:
    """Mechanism dispatch table with run-time rebinding (segue)."""

    def __init__(self, mechanisms: Dict[str, Mechanism]) -> None:
        missing = set(SLOTS) - set(mechanisms)
        if missing:
            raise ValueError(f"context missing mechanism slots: {sorted(missing)}")
        extra = set(mechanisms) - set(SLOTS)
        if extra:
            raise ValueError(f"unknown mechanism slots: {sorted(extra)}")
        self._table: Dict[str, Mechanism] = dict(mechanisms)
        self.session: "TKOSession | None" = None
        self.segue_count = 0

    # ------------------------------------------------------------------
    def bind(self, session: "TKOSession") -> None:
        """Attach every mechanism to its owning session."""
        self.session = session
        for mech in self._table.values():
            mech.bind(session)

    def get(self, slot: str) -> Mechanism:
        return self._table[slot]

    def __getattr__(self, slot: str) -> Mechanism:
        # Convenience: ctx.recovery, ctx.ack, ... (only for known slots)
        table = object.__getattribute__(self, "_table")
        if slot in table:
            return table[slot]
        raise AttributeError(slot)

    def items(self) -> Iterator[Tuple[str, Mechanism]]:
        return iter(self._table.items())

    # ------------------------------------------------------------------
    def segue(self, slot: str, replacement: Mechanism) -> Mechanism:
        """Swap the mechanism in ``slot`` for ``replacement``.

        The replacement adopts the old mechanism's transferable state
        *before* the old one is unbound, so no protocol state (queues,
        timers' obligations, pacing debts) is lost — the paper's loss-free
        on-the-fly reconfiguration.

        Returns the displaced mechanism.
        """
        if slot not in self._table:
            raise KeyError(f"unknown mechanism slot {slot!r}")
        if replacement.category != slot:
            raise ValueError(
                f"{type(replacement).__name__} is a {replacement.category!r} "
                f"mechanism; cannot segue into slot {slot!r}"
            )
        old = self._table[slot]
        if self.session is not None:
            replacement.bind(self.session)
        replacement.adopt(old)
        old.unbind()
        self._table[slot] = replacement
        self.segue_count += 1
        return old

    def describe(self) -> str:
        """Mechanism names per slot, for logs and EXPERIMENTS.md rows."""
        return " ".join(f"{slot}={m.name}" for slot, m in self._table.items())

    def teardown(self) -> None:
        """Unbind every mechanism (cancels mechanism-held timers)."""
        for mech in self._table.values():
            mech.unbind()
