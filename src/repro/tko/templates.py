"""TKO_Template cache (paper §4.2.2).

"The TKO session architecture maintains a cache of customized
TKO_Templates that further optimize the instantiation process" — default
session configurations for commonly requested SCSs, cutting connection-
configuration delay.  Two kinds:

* **static** — guaranteed not to change: fully customized (inline
  expanded), cheapest to instantiate and fastest per PDU, but segue is
  refused and each distinct static template costs code space ("code
  bloat", the Synthesis-kernel trade-off);
* **reconfigurable** — may change during the session: slightly costlier
  and slower, but supports run-time segue.

A cache miss falls back to full dynamic synthesis, the most expensive
instantiation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.tko.config import SessionConfig
from repro.tko.interpreter import CODE_BYTES_PER_MECHANISM

#: instantiation cost in instructions, by path
SYNTH_COST_DYNAMIC = 20000.0      #: full synthesis from the repository
SYNTH_COST_RECONFIGURABLE = 4000.0
SYNTH_COST_STATIC = 1500.0


@dataclass
class Template:
    """One cached pre-assembled configuration.

    Beyond the signature, a warmed template carries the *synthesis
    recipe*: ``plan`` is a tuple of ``(slot, mechanism_class, ctor_kwargs)``
    from which fresh mechanism instances are built on every hit (sessions
    must never share live mechanism state — a segue on one session would
    otherwise mutate the cached table under every later session), and
    ``specs`` is the compiled per-stage cost table
    (:class:`~repro.mechanisms.base.StageSpec` per slot), reused verbatim
    because stage specs are immutable value objects.
    """

    signature: Tuple
    kind: str                      #: "static" | "reconfigurable"
    code_bytes: int = 0            #: customized code footprint (static only)
    hits: int = 0
    created_for: Optional[str] = None  #: e.g. the TSC name that seeded it
    plan: Optional[tuple] = None   #: ((slot, cls, kwargs), ...) build recipe
    specs: Optional[dict] = None   #: slot → StageSpec, compiled once
    #: structural key of the generated send closure serving this shape
    #: (diagnostic only — never part of the signature or the cost model)
    codegen: Optional[tuple] = None


class TemplateCache:
    """Signature-keyed cache of pre-assembled session configurations."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one slot")
        self.max_entries = max_entries
        self._cache: Dict[Tuple, Template] = {}
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, cfg: SessionConfig) -> Optional[Template]:
        """Return the matching template, recording hit/miss."""
        t = self._cache.get(cfg.signature())
        if t is None:
            self.misses += 1
            return None
        t.hits += 1
        return t

    def peek(self, cfg: SessionConfig) -> Optional[Template]:
        """Return the matching template without touching hit/miss counts.

        The synthesizer uses this after :meth:`instantiation_cost` has
        already decided the charge, so the Figure 2 accounting is not
        double-counted.
        """
        return self._cache.get(cfg.signature())

    def store(self, cfg: SessionConfig, created_for: Optional[str] = None) -> Template:
        """Install (or refresh) the template for ``cfg``.

        The kind follows the config's binding: a static binding yields a
        static template (with its code-size cost); anything else a
        reconfigurable one.  Oldest-unused entries are evicted at capacity.
        """
        sig = cfg.signature()
        existing = self._cache.get(sig)
        if existing is not None:
            return existing
        if len(self._cache) >= self.max_entries:
            victim = min(self._cache.values(), key=lambda t: t.hits)
            del self._cache[victim.signature]
        kind = "static" if cfg.binding == "static" else "reconfigurable"
        code = CODE_BYTES_PER_MECHANISM * 7 if kind == "static" else 0
        t = Template(signature=sig, kind=kind, code_bytes=code, created_for=created_for)
        self._cache[sig] = t
        return t

    # ------------------------------------------------------------------
    def instantiation_cost(self, cfg: SessionConfig) -> Tuple[float, bool]:
        """(instructions, cache_hit) for instantiating ``cfg`` now."""
        t = self._cache.get(cfg.signature())
        if t is None:
            return SYNTH_COST_DYNAMIC, False
        cost = SYNTH_COST_STATIC if t.kind == "static" else SYNTH_COST_RECONFIGURABLE
        return cost, True

    @property
    def total_code_bytes(self) -> int:
        """Aggregate customized-code footprint — the bloat metric."""
        return sum(t.code_bytes for t in self._cache.values())

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, cfg: SessionConfig) -> bool:
        return cfg.signature() in self._cache


def preload_tsc_templates(cache: TemplateCache) -> int:
    """Seed a cache with templates for every Table 1 application profile.

    §4.2.2: templates hold "default transport system session
    configurations for commonly requested SCSs" — and the commonly
    requested SCSs are exactly what the TSC defaults produce.  Each
    profile is derived against a reference LAN and a reference WAN so the
    first *real* session of any common shape already hits the cache.

    Returns the number of templates stored.
    """
    from repro.mantts.acd import ACD
    from repro.mantts.monitor import NetworkState
    from repro.mantts.transform import specify_scs
    from repro.mantts.tsc import APP_PROFILES

    reference_paths = (
        NetworkState("A", "B", True, 0.004, 0.004, 10e6, 1500, 1e-6, 0.0, 0.0, 3),
        NetworkState("A", "B", True, 0.15, 0.15, 1.5e6, 1500, 1e-7, 0.2, 0.0, 4),
    )
    stored = 0
    for profile in APP_PROFILES.values():
        acd = ACD(
            participants=("B", "C") if profile.multicast else ("B",),
            quantitative=profile.quantitative(),
            qualitative=profile.qualitative(),
        )
        for path in reference_paths:
            cfg = specify_scs(acd, path).config
            if cfg not in cache:
                cache.store(cfg, created_for=profile.app)
                stored += 1
    return stored
