"""Per-session generated send/recv functions (the paper's customization,
taken to its end state).

:class:`~repro.tko.executor.CompiledExecutor` flattened mechanism dispatch
into prebound entry points driven by a generic method; this module goes
one step further and **emits Python source** for each session's hot path:
stage bodies inlined into one function, the per-stage loop gone, and the
compiled pipeline's charge scalars folded in as closure constants.  This
is the §4.2.2 "static template" idea — a protocol *guaranteed not to
change* may be inline-expanded — applied dynamically: any structural
change (segue, update_config, repipeline) simply regenerates the closure.

Determinism contract: the generated fast path executes the *same
operations in the same order* as ``CompiledExecutor`` (which is itself
bit-identical to ``ReferenceExecutor``), and every situation the fast
path does not specialize for — telemetry on, observers attached, a
protocol graph below the session, multi-fragment messages, pause/close
states, a non-empty send queue — falls back to the compiled path wholesale
*before* consuming any state (no message id drawn, no piggyback config
popped).  The churn delivery digest is the identity check; see
``tests/tko/test_genexec_identity.py``.

Generated code objects are cached process-wide by *structural key* (the
booleans that change the emitted source); per-session numeric constants
bind through the factory's closure, so a thousand same-shaped sessions
share one code object and pay only a closure construction each.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Tuple

from repro.netsim.frame import Frame, _frame_ids
from repro.tko.executor import CompiledExecutor, _msg_counter
from repro.tko.interpreter import NETWORK_HEADER_BYTES
from repro.tko.message import TKOMessage, _msg_ids
from repro.tko.pdu import (
    COMPACT_HEADER_SIZE,
    LEGACY_HEADER_BASE,
    LEGACY_OPTION_SIZE,
    PDU,
    PDU_POOL,
    TRAILER_CHECKSUM_SIZE,
    PduType,
)
from repro.tko.state import SendEntry
from repro.tko.util import noop
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.tko.session import TKOSession

#: structural key -> exec-compiled factory; the process-wide codegen cache
_FACTORY_CACHE: Dict[Tuple, Callable] = {}

#: stats a bench or test can read to prove the cache amortizes
codegen_stats = {"rendered": 0, "factory_hits": 0, "installed": 0}


def _send_source(track: bool, compact: bool, send_deferred: bool,
                 tx_kind: str, rec_kind: str, det_kind: str) -> str:
    """Render the fused single-fragment send function.

    Operation order is a faithful inline of ``CompiledExecutor``'s
    ``_send_body`` → ``pump`` → ``_send_data`` → ``transmit`` →
    ``Host.transmit`` chain for the specialized case; the charge
    expressions keep the compiled pipeline's exact association order so
    float arithmetic stays bit-identical.

    ``tx_kind`` / ``rec_kind`` / ``det_kind`` select mechanism-body
    inlines; ``_install_generated`` only picks a non-"generic" kind after
    proving (by method identity on the exact class) that the inline below
    is the code that would have run.
    """
    # -- transmission control: can_send / send_gap / on_send -----------
    if tx_kind in ("window-rate", "sliding-window"):
        can_send_block = (
            "        peer = state.peer_window\n"
            "        win = WIN if peer is None or WIN < peer else peer\n"
            "        if len(outstanding) >= win:\n"
            "            queue.append(pdu)\n"
            "            return msg_id\n"
        )
    elif tx_kind == "stop-and-wait":
        can_send_block = (
            "        if outstanding:\n"
            "            queue.append(pdu)\n"
            "            return msg_id\n"
        )
    elif tx_kind in ("rate", "none"):
        can_send_block = ""  # can_send() is constant True
    else:
        can_send_block = (
            "        if not can_send():\n"
            "            queue.append(pdu)\n"
            "            return msg_id\n"
        )
    if tx_kind in ("window-rate", "rate"):
        gap_block = (
            "        now = sim._now\n"
            "        gap = rate_obj._next_slot - now\n"
            "        if gap > 0.0:\n"
            "            queue.append(pdu)\n"
            "            schedule_pump(gap)\n"
            "            return msg_id\n"
        )
        now_block = ""  # ``now`` already bound by the gap inline
        tx_on_send_block = (
            "        rate_obj._next_slot = "
            "max(now, rate_obj._next_slot) + 1.0 / float(rate_obj._rate)\n"
        )
    elif tx_kind in ("none", "stop-and-wait", "sliding-window"):
        gap_block = ""  # send_gap() is constant 0.0
        now_block = "        now = sim._now\n"
        tx_on_send_block = ""  # base on_send is a no-op
    else:
        gap_block = (
            "        gap = send_gap()\n"
            "        if gap > 0:\n"
            "            queue.append(pdu)\n"
            "            schedule_pump(gap)\n"
            "            return msg_id\n"
        )
        now_block = "        now = sim._now\n"
        tx_on_send_block = "        tx_on_send(pdu)\n"

    track_block = (
        "        state_track(SendEntry(pdu, first_sent=now, last_sent=now))\n"
        if track else ""
    )

    # -- error recovery: on_send (loss-clock arm + repair extras) ------
    if rec_kind == "retransmit":
        rec_block = (
            "        ev = rec_timer._event\n"
            "        if ev is None or ev.cancelled:\n"
            "            rec_timer.schedule(rtt.rto)\n"
        )
        extras_loop = ""
    elif rec_kind == "norecovery":
        rec_block = ""
        extras_loop = ""
    else:
        rec_block = "        extras = rec_on_send(pdu)\n"
        extras_loop = (
            "        for extra in extras:\n"
            "            exe_transmit(extra, False)\n"
        )

    # -- error detection: attach -----------------------------------------
    if det_kind == "internet":
        det_block = (
            "        pdu.checksum = msg.checksum16()\n"
            "        pdu.checksum_placement = DET_PLACEMENT\n"
        )
    elif det_kind == "checksum":
        det_block = (
            "        pdu.checksum = det_compute(pdu)\n"
            "        pdu.checksum_placement = DET_PLACEMENT\n"
        )
    elif det_kind == "nodetect":
        det_block = (
            "        pdu.checksum = None\n"
            "        pdu.checksum_placement = None\n"
        )
    else:
        det_block = "        det_attach(pdu)\n"

    release_block = (
        "" if track else
        "        if pdu.pooled:\n"
        "            pdu.release()\n"
    )
    deferred_block = (
        "        deferred = DF + DPB * n\n"
        "        if deferred > 0.0:\n"
        "            cpu_charge(deferred)\n"
        if send_deferred else ""
    )
    size_expr = (
        "FSIZE + n + pdu.aux_size" if compact
        else "FSIZE + OPT * len(pdu.options) + n + pdu.aux_size"
    )
    return f"""\
def make_send(b):
    exe = b['exe']; s = b['s']; sim = b['sim']; conn = b['conn']
    compiled_send = b['compiled_send']; telemetry = b['telemetry']
    pool_acquire = b['pool_acquire']; PDU = b['PDU']; DATA = b['DATA']
    SendEntry = b['SendEntry']; Frame = b['Frame']; frame_ids = b['frame_ids']
    TKOMessage = b['TKOMessage']; msg_counter = b['msg_counter']
    msg_ids = b['msg_ids']; state = b['state']; state_track = b['state_track']
    rec_on_send = b['rec_on_send']; tx_on_send = b['tx_on_send']
    det_attach = b['det_attach']; frame_dst = b['frame_dst']
    can_send = b['can_send']; send_gap = b['send_gap']; pb_fn = b['pb_fn']
    cpu_submit = b['cpu_submit']; cpu_charge = b['cpu_charge']
    net_send = b['net_send']; host = b['host']
    exe_transmit = b['exe_transmit']; schedule_pump = b['schedule_pump']
    noop = b['noop']; seg_cell = b['seg_cell']; seg_fn = b['seg_fn']
    net = b['net']; seg_cached = b['seg_cached']
    layers = b['layers']; fast_cell = b['fast_cell']
    outstanding = b['outstanding']; WIN = b['WIN']; rate_obj = b['rate_obj']
    rec_timer = b['rec_timer']; rtt = b['rtt']
    det_compute = b['det_compute']; DET_PLACEMENT = b['DET_PLACEMENT']
    SB = b['SB']; SPB = b['SPB']; SD = b['SD']; DF = b['DF']; DPB = b['DPB']
    PRIORITY = b['PRIORITY']; FSIZE = b['FSIZE']; OPT = b['OPT']
    CONN = b['CONN']; SP = b['SP']; DP = b['DP']; COMPACT = b['COMPACT']
    INTERRUPT = b['INTERRUPT']; HOSTNAME = b['HOSTNAME']
    meter = b['meter']; queue = b['queue']; stats = b['stats']

    def generated_send(data):
        # anything the fast path does not specialize for takes the
        # compiled route, before any state is consumed
        if (telemetry.enabled or s.observers or layers
                or s._paused or s._closing or s._closed
                or not conn.connected or queue):
            # graph *layers* force the fallback; a bare protocol mux with
            # an empty graph egresses exactly like host.transmit, which
            # the fast path inlines below
            return compiled_send(data)
        n = len(data)
        if seg_cached:
            tv = net.topology_version
            if tv != seg_cell[0]:
                seg_cell[1] = seg_fn()
                seg_cell[0] = tv
            seg = seg_cell[1]
        else:
            seg = seg_fn()
        if data.__class__ is not bytes or not 0 < n <= seg:
            # mutable buffers take the compiled route (its ctor snapshots
            # them); wire-size bytes are wrapped below without a copy
            return compiled_send(data)
        fast_cell[0] += 1
        msg_id = next(msg_counter)
        stats.msgs_sent += 1
        msg = TKOMessage.__new__(TKOMessage)  # inline ctor: bytes, n > 0
        msg.id = next(msg_ids)
        msg._headers = []
        msg._segments = [memoryview(data)]
        msg.meter = meter
        msg._leases = None
        if s._pooling:
            pdu = pool_acquire(DATA, CONN, src_port=SP, dst_port=DP,
                               compact=COMPACT)
        else:
            pdu = PDU(DATA, CONN, src_port=SP, dst_port=DP, compact=COMPACT)
        seq = state.snd_nxt
        state.snd_nxt = seq + 1
        pdu.seq = seq
        pdu.msg_id = msg_id
        pdu.message = msg
        pb = pb_fn()
        if pb is not None:
            pdu.options['cfg'] = pb
{can_send_block}{gap_block}{now_block}        pdu.timestamp = now
{track_block}{rec_block}{tx_on_send_block}{det_block}        critical = SB + SPB * n + SD
        stats.data_bytes_sent += n
        if pdu.pooled:
            pdu._refs += 1    # the wire's reference (inlined retain)
        frame = Frame.__new__(Frame)
        frame.id = next(frame_ids)
        frame.src = HOSTNAME
        frame.dst = frame_dst()
        frame.size = {size_expr}
        frame.payload = pdu
        frame.priority = PRIORITY
        frame.corrupted = False
        frame.hops = 0
        frame.multicast_dsts = None
        frame.created_at = now
        frame.trace = []
        frame.heartbeat = False
        stats.pdus_sent += 1
        stats.wire_bytes_sent += frame.size
        host.frames_sent += 1
        cpu_submit(INTERRUPT + critical, net_send, frame)
{deferred_block}{release_block}{extras_loop}        return msg_id

    return generated_send
"""


def _recv_source(recv_deferred: bool) -> str:
    """Render the specialized frame-receive charge function (a total
    replacement — no fallback needed; ``_process`` stays compiled)."""
    deferred_block = (
        "            deferred = RDF + RDPB * n\n"
        "            if deferred > 0.0:\n"
        "                cpu_submit(cost, process, pdu, frame)\n"
        "                cpu_charge(deferred)\n"
        "                return\n"
        if recv_deferred else ""
    )
    return f"""\
def make_recv(b):
    s = b['s']; process = b['process']; cpu_submit = b['cpu_submit']
    cpu_charge = b['cpu_charge']; DATA = b['DATA']; PARITY = b['PARITY']
    RBA = b['RBA']; RBU = b['RBU']; RPB = b['RPB']; RD = b['RD']
    RDF = b['RDF']; RDPB = b['RDPB']; CA = b['CA']; CU = b['CU']

    def generated_handle_frame(pdu, frame):
        if s._closed:
            return
        t = pdu.ptype
        if t is DATA or t is PARITY:
            n = pdu.data_size
            cost = (RBA if pdu.compact else RBU) + RPB * n + RD
{deferred_block}        else:
            cost = CA if pdu.compact else CU
        cpu_submit(cost, process, pdu, frame)

    return generated_handle_frame
"""


def _factory(kind: str, key: Tuple, render: Callable[[], str]) -> Callable:
    cache_key = (kind,) + key
    factory = _FACTORY_CACHE.get(cache_key)
    if factory is None:
        src = render()
        ns: Dict[str, Any] = {}
        exec(compile(src, f"<genexec:{kind}{key}>", "exec"), ns)
        factory = ns["make_send" if kind == "send" else "make_recv"]
        _FACTORY_CACHE[cache_key] = factory
        codegen_stats["rendered"] += 1
    else:
        codegen_stats["factory_hits"] += 1
    return factory


class GeneratedExecutor(CompiledExecutor):
    """Compiled executor whose send/recv entry points are exec-generated.

    ``recompile`` (prime, segue, update_config, repipeline) re-derives the
    structural key, fetches or renders the factory, and installs fresh
    closures as *instance attributes* — shadowing the compiled methods for
    every caller that goes through ``session.executor.send`` /
    ``.handle_frame``, while the compiled methods remain reachable as the
    fallback and for every cold path.
    """

    kind = "generated"
    pools_pdus = True

    def recompile(self, reason: str, specs=None) -> None:
        super().recompile(reason, specs=specs)
        self._install_generated()

    @property
    def fast_sends(self) -> int:
        """How many sends took the generated fast path (vs falling back)."""
        return self._fast_cell[0]

    # ------------------------------------------------------------------
    def _mechanism_kinds(self) -> Tuple[str, str, str]:
        """Classify the bound mechanisms for body inlining.

        A non-"generic" kind is claimed only for the *exact* class whose
        method bodies the generated source reproduces (and, for hooks a
        subclass could override, only when the bound method **is** the
        base implementation) — any user subclass or unknown mechanism
        falls back to calling through the prebound entry points.
        """
        from repro.mechanisms.base import TransmissionControl
        from repro.mechanisms.detection import (
            InternetChecksum, NoDetection, _ChecksumBase)
        from repro.mechanisms.retransmission import (
            NoRecovery, _RetransmitBase)
        from repro.mechanisms.transmission import (
            NoTransmissionControl, RateControl, SlidingWindow, StopAndWait,
            WindowRate)

        tx = self._tx
        tcls = type(tx)
        base_on_send = tcls.on_send is TransmissionControl.on_send
        if (tcls is WindowRate and type(tx._window) is SlidingWindow
                and type(tx._rate) is RateControl):
            tx_kind = "window-rate"
        elif tcls is RateControl:
            tx_kind = "rate"
        elif tcls is NoTransmissionControl and base_on_send:
            tx_kind = "none"
        elif tcls is StopAndWait and base_on_send:
            tx_kind = "stop-and-wait"
        elif tcls is SlidingWindow and base_on_send:
            tx_kind = "sliding-window"
        else:
            tx_kind = "generic"

        rec = self._rec
        rcls = type(rec)
        if (issubclass(rcls, _RetransmitBase)
                and rcls.on_send is _RetransmitBase.on_send
                and rcls._arm is _RetransmitBase._arm
                and rec._timer is not None):
            rec_kind = "retransmit"
        elif rcls.on_send is NoRecovery.on_send:
            rec_kind = "norecovery"
        else:
            rec_kind = "generic"

        det = self._det
        dcls = type(det)
        if dcls is InternetChecksum:
            det_kind = "internet"
        elif (issubclass(dcls, _ChecksumBase)
                and dcls.attach is _ChecksumBase.attach):
            det_kind = "checksum"
        elif dcls is NoDetection:
            det_kind = "nodetect"
        else:
            det_kind = "generic"
        return tx_kind, rec_kind, det_kind

    def _install_generated(self) -> None:
        s = self.s
        if getattr(self, "_fast_cell", None) is None:
            self._fast_cell = [0]  # survives recompiles; one per session
        pipe = self.pipeline
        det = self._det
        placement = getattr(det, "placement", None)
        trailer = TRAILER_CHECKSUM_SIZE if placement == "trailer" else 0
        compact = bool(s.cfg.compact_headers)
        header = (COMPACT_HEADER_SIZE if compact else LEGACY_HEADER_BASE)
        send_deferred = (pipe.send_def_fixed != 0.0
                         or pipe.send_def_per_byte != 0.0)
        recv_deferred = (pipe.recv_def_fixed != 0.0
                         or pipe.recv_def_per_byte != 0.0)
        track = pipe.track_outstanding
        net = s.host.network
        seg_cached = hasattr(net, "topology_version")
        tx_kind, rec_kind, det_kind = self._mechanism_kinds()

        #: the structural key of the installed send closure — the template
        #: cache records this at warm time so diagnostics can tie a cached
        #: configuration to the codegen shape serving it
        self.codegen_key = (track, compact, send_deferred, seg_cached,
                            tx_kind, rec_kind, det_kind)
        send_factory = _factory(
            "send", self.codegen_key,
            lambda: _send_source(track, compact, send_deferred,
                                 tx_kind, rec_kind, det_kind))
        recv_factory = _factory(
            "recv", (recv_deferred,),
            lambda: _recv_source(recv_deferred))

        bindings = {
            "exe": self, "s": s, "sim": s.sim, "conn": self._conn,
            "compiled_send": CompiledExecutor.send.__get__(self),
            "telemetry": _TELEMETRY,
            "pool_acquire": PDU_POOL.acquire, "PDU": PDU,
            "DATA": PduType.DATA, "PARITY": PduType.PARITY,
            "SendEntry": SendEntry, "Frame": Frame, "frame_ids": _frame_ids,
            "TKOMessage": TKOMessage, "msg_counter": _msg_counter,
            "msg_ids": _msg_ids, "state": s.state,
            "state_track": s.state.track,
            "rec_on_send": self._rec_on_send, "tx_on_send": self._tx_on_send,
            "det_attach": self._det_attach, "frame_dst": self._frame_dst,
            "can_send": self._tx_can_send, "send_gap": self._tx_send_gap,
            "pb_fn": self._conn.piggyback_config,
            "cpu_submit": s.host.cpu.submit, "cpu_charge": s.host.cpu.charge,
            "net_send": net.send,
            "host": s.host, "exe_transmit": self.transmit,
            "schedule_pump": self._schedule_pump, "noop": noop,
            "seg_cell": [-1, 0], "seg_fn": s.segment_size, "net": net,
            "seg_cached": seg_cached,
            "layers": s.protocol.layers if s.protocol is not None else (),
            "fast_cell": self._fast_cell,
            # mechanism-inline bindings (None when the kind is "generic";
            # the rendered source for that kind never references them)
            "outstanding": s.state.outstanding, "WIN": s.cfg.window,
            "rate_obj": (self._tx._rate if tx_kind == "window-rate"
                         else self._tx if tx_kind == "rate" else None),
            "rec_timer": getattr(self._rec, "_timer", None),
            "rtt": s.rtt,
            "det_compute": getattr(self._det, "_compute", None),
            "DET_PLACEMENT": getattr(self._det, "placement", None),
            "process": self._process,
            "FSIZE": header + trailer + NETWORK_HEADER_BYTES,
            "OPT": LEGACY_OPTION_SIZE,
            "CONN": s.conn_id, "SP": s.local_port, "DP": s.remote_port,
            "COMPACT": compact, "INTERRUPT": s.host.cpu.costs.interrupt,
            "HOSTNAME": s.host.name, "meter": s.copy_meter,
            "queue": s._send_queue, "stats": s.stats,
            # the closed-form charge scalars, folded by the pipeline itself
            # (SB/SPB/SD/DF/DPB/PRIORITY + the recv/control family)
            **pipe.charge_bindings(),
        }
        # instance attributes shadow the class methods for attribute
        # lookups through session.executor.<name>
        self.send = send_factory(bindings)
        self.handle_frame = recv_factory(bindings)
        codegen_stats["installed"] += 1
