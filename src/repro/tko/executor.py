"""Session data-path executors: interpreted reference vs compiled pipeline.

The tentpole of the pipeline-compilation refactor: ``TKOSession`` owns the
association's *state* (addresses, windows, RTT, stats, lifecycle) while the
per-PDU *hot path* lives in an executor chosen at session construction:

* :class:`ReferenceExecutor` — the pre-compilation data path, verbatim: a
  per-slot walk of the mechanism table through Python's attribute dispatch
  with the :class:`~repro.tko.interpreter.CostModel` re-deriving every
  PDU's CPU charge at run time.  Kept as the behavioural oracle and the
  baseline that ``benchmarks/test_pipeline_dispatch.py`` measures against.
* :class:`CompiledExecutor` — executes the
  :class:`~repro.tko.pipeline.CompiledPipeline`: closed-form per-PDU
  charges, mechanism entry points pre-bound at compile time (no dict/
  ``__getattr__`` walk per PDU), telemetry behind ``TELEMETRY.enabled``
  guards, and free-listed DATA/ACK shells from
  :data:`repro.tko.pdu.PDU_POOL` when the configuration is pool-safe.

Both executors produce **identical simulated time**: the compiled charge
arithmetic is bit-exact against the interpreter (see
:mod:`repro.tko.pipeline`), and every state transition is ported verbatim.
Only wall time differs — which is the paper's Synthesis/SELF point.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.netsim.frame import Frame, PRIO_CONTROL, PRIO_HIGH, PRIO_NORMAL
from repro.tko.interpreter import NETWORK_HEADER_BYTES
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType
from repro.tko.pipeline import compile_pipeline
from repro.tko.state import SendEntry
from repro.tko.util import noop
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.frame import Frame as _Frame
    from repro.tko.session import TKOSession

_msg_counter = itertools.count(1)

EXECUTOR_KINDS = ("reference", "compiled", "generated")

#: the kind new sessions get unless :func:`use_executor` overrides it
DEFAULT_KIND = "generated"

_EXECUTOR_KIND = DEFAULT_KIND


def use_executor(kind: str) -> None:
    """Select the executor for sessions constructed from now on."""
    global _EXECUTOR_KIND
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}")
    _EXECUTOR_KIND = kind


def current_executor() -> str:
    return _EXECUTOR_KIND


def build_executor(session: "TKOSession") -> "_ExecutorBase":
    if _EXECUTOR_KIND == "generated":
        from repro.tko.genexec import GeneratedExecutor  # avoid import cycle

        return GeneratedExecutor(session)
    cls = CompiledExecutor if _EXECUTOR_KIND == "compiled" else ReferenceExecutor
    return cls(session)


class _ExecutorBase:
    """State-machine pieces shared by both executors (cold paths)."""

    kind = ""
    #: whether this executor's sessions may draw DATA/ACK shells from the pool
    pools_pdus = False

    def __init__(self, session: "TKOSession") -> None:
        self.s = session

    # -- lifecycle hooks -------------------------------------------------
    def prime(self, specs=None) -> None:
        """Called once after the context is bound (specs: cached stages)."""

    def refresh_slot(self, slot: str, reason: str = "segue") -> None:
        """One mechanism was swapped; re-derive whatever depends on it."""

    def on_update_config(self) -> None:
        """The session's config object was replaced (parameter retune)."""

    # -- shared cold-path machinery -------------------------------------
    def _schedule_pump(self, delay: float) -> None:
        s = self.s
        if s._pump_event is not None and not s._pump_event.cancelled:
            return
        s._pump_event = s.sim.schedule_transient(delay, self._pump_fire)

    def _pump_fire(self) -> None:
        self.s._pump_event = None
        self.pump()

    def _release_buffer(self, pdu: PDU) -> None:
        s = self.s
        buf = s._pdu_buffers.pop(pdu.id, None)
        if buf is not None:
            s.host.buffers.free(buf)

    def retransmit_entry(self, entry: SendEntry) -> None:
        s = self.s
        if s._closed:
            return
        entry.retries += 1
        entry.last_sent = s.sim.now
        s.stats.retransmissions += 1
        s._notify("retransmit", seq=entry.pdu.seq, retries=entry.retries)
        clone = entry.pdu.retransmit_clone()
        self.transmit(clone, False)

    def finalize_ack(self, seq: int) -> None:
        s = self.s
        entry = s.state.release(seq)
        if entry is None:
            return
        if entry.retries == 0:  # Karn's rule: clean samples only
            s.rtt.update(s.sim.now - entry.first_sent)
        else:
            s.rtt.note_progress()
        pdu = entry.pdu
        if pdu.pooled:
            pdu.release()  # the retransmission queue's (creator) reference
        if s._drain_waiters:
            s._check_drained()
        s._maybe_finish_close()

    def gap_timeout(self) -> None:
        s = self.s
        released = s.recv_window.skip_gap()
        if released:
            s.stats.gap_skips += 1
        for pdu in released:
            self._deliver_pdu(pdu)
        if s.recv_window.buffer:
            s._gap_timer.schedule(s.cfg.gap_timeout)

    def _deliver_app(self, message: TKOMessage, first: PDU) -> None:
        s = self.s
        if s._closed:
            return
        data = message.materialize()  # the one app-boundary copy
        costs = s.host.cpu.costs
        s.host.cpu.submit(
            costs.per_byte_copy * len(data) + costs.context_switch, noop
        )
        latency = s.sim.now - first.timestamp if first.timestamp else 0.0
        stats = s.stats
        stats.msgs_delivered += 1
        stats.data_bytes_delivered += len(data)
        stats.record_latency(latency)
        s._notify("deliver", msg_id=first.msg_id, nbytes=len(data), latency=latency)
        if s.on_deliver is not None:
            s.on_deliver(
                data,
                {
                    "msg_id": first.msg_id,
                    "sent_at": first.timestamp,
                    "latency": latency,
                    "reconstructed": bool(first.options.get("fec_reconstructed")),
                },
            )
        if first.pooled:
            first.release()  # held since reassembly for the meta fields above


class ReferenceExecutor(_ExecutorBase):
    """The retained pre-compilation data path (behavioural oracle).

    Every method is the original ``TKOSession`` hot path with ``self``
    replaced by ``self.s``: per-slot context lookups, run-time CostModel
    charges, unconditional span entry on send.  Sessions running this
    executor never draw from the PDU pool.
    """

    kind = "reference"
    pools_pdus = False

    # -- send path -------------------------------------------------------
    def send(self, data: bytes) -> int:
        s = self.s
        if s._closed or s._closing:
            raise RuntimeError("session is closed")
        msg_id = next(_msg_counter)
        with _TELEMETRY.span("session-send", "tko", msg_id=msg_id,
                             nbytes=len(data), conn=s.conn_id):
            s.stats.msgs_sent += 1
            msg = TKOMessage(data, meter=s.copy_meter)
            seg = s.segment_size()
            total = msg.data_length
            frag_count = max(1, -(-total // seg))
            piggyback = s.context.connection.piggyback_config()
            for i in range(frag_count):
                part = msg.take(min(seg, msg.data_length)) if total else TKOMessage(b"", meter=s.copy_meter)
                pdu = s.make_pdu(PduType.DATA)
                pdu.seq = s.state.next_seq()
                pdu.msg_id = msg_id
                pdu.frag_index = i
                pdu.frag_count = frag_count
                pdu.message = part
                if piggyback is not None:
                    pdu.options["cfg"] = piggyback
                    piggyback = None
                s._send_queue.append(pdu)
            self.pump()
        return msg_id

    def pump(self) -> None:
        s = self.s
        if s._closed or s._paused or not s.context.connection.connected:
            return
        tx = s.context.transmission
        while s._send_queue and tx.can_send():
            gap = tx.send_gap()
            if gap > 0:
                self._schedule_pump(gap)
                return
            pdu = s._send_queue.popleft()
            self._send_data(pdu)
        s._maybe_finish_close()

    def _track_outstanding(self) -> bool:
        s = self.s
        return (
            s.context.recovery.retransmits
            or s.cfg.transmission
            in ("stop-and-wait", "sliding-window", "window-rate", "tcp-aimd")
        )

    def _send_data(self, pdu: PDU) -> None:
        s = self.s
        pdu.timestamp = s.sim.now
        if self._track_outstanding():
            s.state.track(SendEntry(pdu, first_sent=s.sim.now, last_sent=s.sim.now))
        recovery = s.context.recovery
        if _TELEMETRY.enabled:
            recovery.count_invoke("encode")
            with recovery.invoke_span("encode"):
                extras = list(recovery.on_send(pdu))
            s.context.transmission.count_invoke("on_send")
        else:
            extras = list(recovery.on_send(pdu))
        s.context.transmission.on_send(pdu)
        self.transmit(pdu, control=False)
        for extra in extras:
            self.transmit(extra, control=False)

    def transmit(self, pdu: PDU, control: bool) -> None:
        s = self.s
        if s._closed:
            return
        if _TELEMETRY.enabled:
            s.context.detection.count_invoke("attach")
        s.context.detection.attach(pdu)
        if pdu.ptype is PduType.DATA:
            critical, deferred = s.cost_model.send_charge(pdu)
            dst = s.context.delivery.frame_dst()
            priority = PRIO_HIGH if s.cfg.priority else PRIO_NORMAL
            s.stats.data_bytes_sent += pdu.data_size
        else:
            critical = s.cost_model.control_charge(pdu)
            deferred = 0.0
            dst = s.remote_host
            priority = PRIO_CONTROL if (control or pdu.is_control) else (
                PRIO_HIGH if s.cfg.priority else PRIO_NORMAL
            )
        frame = Frame(
            src=s.host.name,
            dst=dst,
            size=pdu.wire_size + NETWORK_HEADER_BYTES,
            payload=pdu,
            priority=priority,
            created_at=s.sim.now,
        )
        s.stats.pdus_sent += 1
        s.stats.wire_bytes_sent += frame.size
        s._notify("pdu-sent", pdu=pdu, size=frame.size)
        if s.protocol is not None:
            # descend the protocol graph (any installed layers) to the NIC
            s.protocol.egress(frame, extra_instructions=critical)
        else:
            s.host.transmit(frame, extra_instructions=critical)
        if deferred > 0.0:
            # trailer checksum: computed during serialization — CPU burns
            # the cycles but the frame does not wait for them
            s.host.cpu.submit(deferred, noop)

    # -- receive path ----------------------------------------------------
    def handle_frame(self, pdu: PDU, frame: "_Frame") -> None:
        s = self.s
        if s._closed:
            return
        deferred = 0.0
        if pdu.ptype in (PduType.DATA, PduType.PARITY):
            cost, deferred = s.cost_model.recv_charge(pdu)
        else:
            cost = s.cost_model.control_charge(pdu)
        s.host.cpu.submit(cost, self._process, pdu, frame)
        if deferred > 0.0:
            s.host.cpu.submit(deferred, noop)

    def _process(self, pdu: PDU, frame: "_Frame") -> None:
        s = self.s
        if s._closed:
            return
        s.stats.pdus_received += 1
        s._notify("pdu-received", pdu=pdu, corrupted=frame.corrupted)
        if _TELEMETRY.enabled:
            s.context.detection.count_invoke("verify")
        if not s.context.detection.verify(pdu, frame.corrupted):
            s._notify("pdu-rejected", pdu=pdu)
            return
        t = pdu.ptype
        if t is PduType.DATA:
            self._handle_data(pdu)
        elif t is PduType.ACK:
            s._handle_ack(pdu, frame.src)
        elif t is PduType.PARITY:
            for rebuilt in s.context.recovery.on_receive_repair(pdu):
                self._handle_data(rebuilt)
        elif t is PduType.PROBE:
            reply = s.make_pdu(PduType.PROBE_REPLY)
            reply.timestamp = pdu.timestamp
            s.emit_control(reply)
        elif t in (PduType.CONFIG, PduType.CONFIG_ACK, PduType.PROBE_REPLY):
            if s.on_signalling is not None:
                s.on_signalling(pdu)
        else:
            s.context.connection.handle_control(pdu)

    def _handle_data(self, pdu: PDU) -> None:
        s = self.s
        ctx = s.context
        buf = s.host.buffers.alloc(max(1, pdu.wire_size))
        if buf is None:
            s.stats.buffer_drops += 1
            return
        s._pdu_buffers[pdu.id] = buf
        ctx.recovery.note_data_received(pdu)
        seqm = ctx.sequencing
        deliverable, accepted, gap = s.recv_window.accept(
            pdu,
            accept_ooo=ctx.recovery.accept_out_of_order,
            ordered=seqm.ordered,
            dedup=seqm.dedup,
        )
        if gap:
            ctx.ack.on_gap(pdu)
            self._arm_gap_timer()
        if accepted:
            if _TELEMETRY.enabled:
                ctx.ack.count_invoke("on_data")
            ctx.ack.on_data(pdu)
        else:
            # discarded (GBN out-of-order / duplicate): release its buffer
            self._release_buffer(pdu)
            if not gap:
                # stale duplicate below the window: the ACK that covered
                # it was lost on the way back.  Re-acknowledge now (TCP's
                # segment-below-window rule) or the sender retransmits a
                # delivered PDU all the way to its give-up limit.
                ctx.ack.on_gap(pdu)
        for out in deliverable:
            self._deliver_pdu(out)
        # a data arrival can complete an FEC group whose parity came first
        repair = getattr(ctx.recovery, "repair_opportunity", None)
        if repair is not None:
            for rebuilt in repair(pdu):
                self._handle_data(rebuilt)

    def _deliver_pdu(self, pdu: PDU) -> None:
        s = self.s
        frags = s.reassembler.add(pdu)
        self._release_buffer(pdu)
        if frags is None:
            return
        combined = TKOMessage((), meter=s.copy_meter)
        for f in frags:
            if f.message is not None:
                combined.concat(f.message)
        first = frags[0]
        if _TELEMETRY.enabled:
            s.context.jitter.count_invoke("release_delay")
        delay = s.context.jitter.release_delay(first)
        if delay > 0:
            s.sim.schedule(delay, self._deliver_app, combined, first)
        else:
            self._deliver_app(combined, first)

    def handle_ack(self, pdu: PDU, from_host: str) -> None:
        s = self.s
        s.stats.acks_received += 1
        ctx = s.context
        if _TELEMETRY.enabled:
            ctx.transmission.count_invoke("on_ack")
            ctx.recovery.count_invoke("on_ack")
        ctx.transmission.on_ack(pdu)
        if pdu.ack is not None:
            for seq in [q for q in s.state.outstanding if q < pdu.ack]:
                if ctx.delivery.ack_complete(seq, from_host):
                    self.finalize_ack(seq)
        if s._closed:
            # this ack completed a pending close (finalize_ack ->
            # _maybe_finish_close tears the session down synchronously
            # under non-blocking connection management); the mechanisms
            # are unbound now, so the pdu has nothing left to drive
            return
        if pdu.sack:
            destinations = set(ctx.delivery.destinations())
            for seq in pdu.sack:
                entry = s.state.outstanding.get(seq)
                if entry is not None:
                    entry.sacked_by.add(from_host)
                    entry.sacked = entry.sacked_by >= destinations
        ctx.recovery.on_ack(pdu, from_host)
        self.pump()

    def _arm_gap_timer(self) -> None:
        s = self.s
        ctx = s.context
        if ctx.recovery.retransmits or not ctx.sequencing.ordered:
            return
        if not s._gap_timer.armed:
            s._gap_timer.schedule(s.cfg.gap_timeout)


class CompiledExecutor(_ExecutorBase):
    """Executes the compiled pipeline: flat stages, closed-form charges.

    ``recompile`` pre-binds every mechanism entry point the hot path needs
    (one attribute load per PDU instead of a ``__getattr__`` dict walk per
    slot access) and caches the pipeline's scalar charges.  Segue calls
    :meth:`refresh_slot`, which recompiles only the swapped stage's spec
    and re-splices — ``adopt()`` has already transferred mechanism state.
    """

    kind = "compiled"
    pools_pdus = True

    def prime(self, specs=None) -> None:
        self.recompile("synthesize", specs=specs)

    def refresh_slot(self, slot: str, reason: str = "segue") -> None:
        specs = dict(self.pipeline.specs)
        specs[slot] = self.s.context.get(slot).compile_stage()
        self.recompile(reason, specs=specs)

    def on_update_config(self) -> None:
        self.recompile("update-config")

    def recompile(self, reason: str, specs=None) -> None:
        s = self.s
        self.pipeline = pipe = compile_pipeline(s, specs=specs, reason=reason)
        ctx = s.context
        self._conn = ctx.connection
        tx = ctx.transmission
        self._tx = tx
        self._tx_can_send = tx.can_send
        self._tx_send_gap = tx.send_gap
        self._tx_on_send = tx.on_send
        self._tx_on_ack = tx.on_ack
        det = ctx.detection
        self._det = det
        self._det_attach = det.attach
        self._det_verify = det.verify
        rec = ctx.recovery
        self._rec = rec
        self._rec_on_send = rec.on_send
        self._rec_on_ack = rec.on_ack
        self._rec_note = rec.note_data_received
        self._rec_repair = rec.on_receive_repair
        self._rec_repair_opp = getattr(rec, "repair_opportunity", None)
        self._accept_ooo = rec.accept_out_of_order
        self._retransmits = rec.retransmits
        ack = ctx.ack
        self._ack_mech = ack
        self._ack_on_data = ack.on_data
        self._ack_on_gap = ack.on_gap
        seqm = ctx.sequencing
        self._ordered = seqm.ordered
        self._dedup = seqm.dedup
        dlv = ctx.delivery
        self._frame_dst = dlv.frame_dst
        self._destinations = dlv.destinations
        self._ack_complete = dlv.ack_complete
        jit = ctx.jitter
        self._jit = jit
        self._jit_delay = jit.release_delay
        self._track = pipe.track_outstanding

    # -- send path -------------------------------------------------------
    def send(self, data: bytes) -> int:
        s = self.s
        if s._closed or s._closing:
            raise RuntimeError("session is closed")
        msg_id = next(_msg_counter)
        if _TELEMETRY.enabled:
            with _TELEMETRY.span("session-send", "tko", msg_id=msg_id,
                                 nbytes=len(data), conn=s.conn_id):
                self._send_body(msg_id, data)
        else:
            self._send_body(msg_id, data)
        return msg_id

    def _send_body(self, msg_id: int, data: bytes) -> None:
        s = self.s
        s.stats.msgs_sent += 1
        msg = TKOMessage(data, meter=s.copy_meter)
        seg = s.segment_size()  # per-send: the path MTU can change under us
        total = msg.data_length
        piggyback = self._conn.piggyback_config()
        queue = s._send_queue
        if 0 < total <= seg:
            # single-fragment fast path: the message *is* the payload, so
            # skip the split/take machinery entirely (frag 0 of 1 is what
            # make_pdu hands back already)
            pdu = s.make_pdu(PduType.DATA)
            pdu.seq = s.state.next_seq()
            pdu.msg_id = msg_id
            pdu.message = msg
            if piggyback is not None:
                pdu.options["cfg"] = piggyback
            queue.append(pdu)
            self.pump()
            return
        frag_count = max(1, -(-total // seg))
        make_pdu = s.make_pdu
        next_seq = s.state.next_seq
        for i in range(frag_count):
            part = msg.take(min(seg, msg.data_length)) if total else TKOMessage(b"", meter=s.copy_meter)
            pdu = make_pdu(PduType.DATA)
            pdu.seq = next_seq()
            pdu.msg_id = msg_id
            pdu.frag_index = i
            pdu.frag_count = frag_count
            pdu.message = part
            if piggyback is not None:
                pdu.options["cfg"] = piggyback
                piggyback = None
            queue.append(pdu)
        self.pump()

    def pump(self) -> None:
        s = self.s
        if s._closed or s._paused or not self._conn.connected:
            return
        queue = s._send_queue
        if queue:
            can_send = self._tx_can_send
            send_gap = self._tx_send_gap
            while queue and can_send():
                gap = send_gap()
                if gap > 0:
                    self._schedule_pump(gap)
                    return
                self._send_data(queue.popleft())
        if s._closing:
            s._maybe_finish_close()

    def _send_data(self, pdu: PDU) -> None:
        s = self.s
        now = s.sim.now
        pdu.timestamp = now
        tracked = self._track
        if tracked:
            s.state.track(SendEntry(pdu, first_sent=now, last_sent=now))
        if _TELEMETRY.enabled:
            self._rec.count_invoke("encode")
            with self._rec.invoke_span("encode"):
                extras = self._rec_on_send(pdu)
            self._tx.count_invoke("on_send")
        else:
            extras = self._rec_on_send(pdu)
        self._tx_on_send(pdu)
        self.transmit(pdu, False)
        if not tracked and pdu.pooled:
            pdu.release()  # creator ref; tracked entries keep it until ACKed
        for extra in extras:
            self.transmit(extra, False)

    def transmit(self, pdu: PDU, control: bool) -> None:
        s = self.s
        if s._closed:
            return
        if _TELEMETRY.enabled:
            self._det.count_invoke("attach")
        self._det_attach(pdu)
        pipe = self.pipeline
        stats = s.stats
        if pdu.ptype is PduType.DATA:
            n = pdu.data_size
            critical = pipe.send_base + pipe.send_per_byte * n + pipe.send_dispatch
            deferred = pipe.send_def_fixed + pipe.send_def_per_byte * n
            dst = self._frame_dst()
            priority = pipe.data_priority
            stats.data_bytes_sent += n
        else:
            critical = pipe.control_aligned if pdu.compact else pipe.control_unaligned
            deferred = 0.0
            dst = s.remote_host
            priority = PRIO_CONTROL if (control or pdu.is_control) else pipe.data_priority
        if pdu.pooled:
            # The wire's reference.  On the sim substrate the receive path
            # releases it; on a real substrate the fabric consumes it at
            # send time (success or any failure path) — past the codec no
            # local receive path will ever see this shell again.
            pdu.retain()
        frame = Frame(
            src=s.host.name,
            dst=dst,
            size=pdu.wire_size + NETWORK_HEADER_BYTES,
            payload=pdu,
            priority=priority,
            created_at=s.sim.now,
        )
        stats.pdus_sent += 1
        stats.wire_bytes_sent += frame.size
        if s.observers:
            s._notify("pdu-sent", pdu=pdu, size=frame.size)
        if s.protocol is not None:
            s.protocol.egress(frame, extra_instructions=critical)
        else:
            s.host.transmit(frame, extra_instructions=critical)
        if deferred > 0.0:
            s.host.cpu.submit(deferred, noop)

    # -- receive path ----------------------------------------------------
    def handle_frame(self, pdu: PDU, frame: "_Frame") -> None:
        s = self.s
        if s._closed:
            return
        pipe = self.pipeline
        t = pdu.ptype
        if t is PduType.DATA or t is PduType.PARITY:
            n = pdu.data_size
            base = pipe.recv_base_aligned if pdu.compact else pipe.recv_base_unaligned
            cost = base + pipe.recv_per_byte * n + pipe.recv_dispatch
            deferred = pipe.recv_def_fixed + pipe.recv_def_per_byte * n
        else:
            cost = pipe.control_aligned if pdu.compact else pipe.control_unaligned
            deferred = 0.0
        cpu = s.host.cpu
        cpu.submit(cost, self._process, pdu, frame)
        if deferred > 0.0:
            cpu.submit(deferred, noop)

    def _process(self, pdu: PDU, frame: "_Frame") -> None:
        s = self.s
        if s._closed:
            return
        s.stats.pdus_received += 1
        if s.observers:
            s._notify("pdu-received", pdu=pdu, corrupted=frame.corrupted)
        if _TELEMETRY.enabled:
            self._det.count_invoke("verify")
        if not self._det_verify(pdu, frame.corrupted):
            if s.observers:
                s._notify("pdu-rejected", pdu=pdu)
            if pdu.pooled:
                pdu.release()
            return
        t = pdu.ptype
        if t is PduType.DATA:
            self._handle_data(pdu)  # consumes the wire reference
        elif t is PduType.ACK:
            s._handle_ack(pdu, frame.src)
            if pdu.pooled:
                pdu.release()
        elif t is PduType.PARITY:
            for rebuilt in self._rec_repair(pdu):
                self._handle_data(rebuilt)
        elif t is PduType.PROBE:
            reply = s.make_pdu(PduType.PROBE_REPLY)
            reply.timestamp = pdu.timestamp
            s.emit_control(reply)
        elif t in (PduType.CONFIG, PduType.CONFIG_ACK, PduType.PROBE_REPLY):
            if s.on_signalling is not None:
                s.on_signalling(pdu)
        else:
            self._conn.handle_control(pdu)

    def _handle_data(self, pdu: PDU) -> None:
        s = self.s
        buf = s.host.buffers.alloc(max(1, pdu.wire_size))
        if buf is None:
            s.stats.buffer_drops += 1
            if pdu.pooled:
                pdu.release()
            return
        s._pdu_buffers[pdu.id] = buf
        self._rec_note(pdu)
        deliverable, accepted, gap = s.recv_window.accept(
            pdu,
            accept_ooo=self._accept_ooo,
            ordered=self._ordered,
            dedup=self._dedup,
        )
        if gap:
            self._ack_on_gap(pdu)
            self._arm_gap_timer()
        if accepted:
            if _TELEMETRY.enabled:
                self._ack_mech.count_invoke("on_data")
            self._ack_on_data(pdu)
        else:
            # discarded (GBN out-of-order / duplicate): release its buffer
            self._release_buffer(pdu)
            if not gap:
                # stale duplicate below the window: re-acknowledge (the
                # mirror of the reference executor's below-window rule)
                self._ack_on_gap(pdu)
        for out in deliverable:
            self._deliver_pdu(out)
        # a data arrival can complete an FEC group whose parity came first
        # (FEC senders never pool, so ``pdu`` is always intact here)
        repair = self._rec_repair_opp
        if repair is not None:
            for rebuilt in repair(pdu):
                self._handle_data(rebuilt)
        if not accepted and pdu.pooled:
            pdu.release()  # wire ref of a rejected PDU, dropped last

    def _deliver_pdu(self, pdu: PDU) -> None:
        s = self.s
        frags = s.reassembler.add(pdu)
        self._release_buffer(pdu)
        if frags is None:
            return  # wire ref parked in the reassembler until complete
        combined = TKOMessage((), meter=s.copy_meter)
        for f in frags:
            if f.message is not None:
                combined.concat(f.message)
        first = frags[0]
        for f in frags[1:]:
            if f.pooled:
                f.release()  # payload now referenced by ``combined``
        if _TELEMETRY.enabled:
            self._jit.count_invoke("release_delay")
        delay = self._jit_delay(first)
        if delay > 0:
            s.sim.schedule(delay, self._deliver_app, combined, first)
        else:
            self._deliver_app(combined, first)

    def handle_ack(self, pdu: PDU, from_host: str) -> None:
        s = self.s
        s.stats.acks_received += 1
        if _TELEMETRY.enabled:
            self._tx.count_invoke("on_ack")
            self._rec.count_invoke("on_ack")
        self._tx_on_ack(pdu)
        outstanding = s.state.outstanding
        if pdu.ack is not None:
            ack = pdu.ack
            for seq in [q for q in outstanding if q < ack]:
                if self._ack_complete(seq, from_host):
                    self.finalize_ack(seq)
        if s._closed:
            # this ack completed a pending close (finalize_ack ->
            # _maybe_finish_close tears the session down synchronously
            # under non-blocking connection management); the mechanisms
            # are unbound now, so the pdu has nothing left to drive
            return
        if pdu.sack:
            destinations = set(self._destinations())
            for seq in pdu.sack:
                entry = outstanding.get(seq)
                if entry is not None:
                    entry.sacked_by.add(from_host)
                    entry.sacked = entry.sacked_by >= destinations
        self._rec_on_ack(pdu, from_host)
        self.pump()

    def _arm_gap_timer(self) -> None:
        if self._retransmits or not self._ordered:
            return
        s = self.s
        if not s._gap_timer.armed:
            s._gap_timer.schedule(s.cfg.gap_timeout)
