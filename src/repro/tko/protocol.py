"""TKO_Protocol: protocol objects, the protocol graph, and demultiplexing.

A ``TKOProtocol`` is the per-host entry point of the transport system: it
receives frames from the host NIC, demultiplexes PDUs to the owning
:class:`~repro.tko.session.TKOSession` via the port table, and creates
passive-side sessions for listeners (either on an explicit SYN or on the
first implicitly-configured DATA PDU — §4.1.1's two negotiation styles).

Protocol graph operations (§4.2.1: "insert, delete, and/or alter protocol
objects") are provided by :class:`PassthroughLayer`: extra graph layers
each impose their per-PDU cost and, in *naive* buffering mode, an extra
payload copy at the layer boundary — the discipline TKO_Message's lazy
sharing eliminates (experiment E8).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.host.nic import Host
from repro.netsim.frame import Frame
from repro.tko.config import SessionConfig
from repro.tko.pdu import PDU, PduType
from repro.tko.session import TKOSession
from repro.tko.synthesizer import TKOSynthesizer
from repro.unites.obs.audit import AUDIT as _AUDIT

#: instructions to demultiplex one arriving PDU to its session
DEMUX_COST = 120.0


@dataclass
class Listener:
    """A passive-open registration on a local port."""

    port: int
    cfg_factory: Callable[[PDU, Frame], SessionConfig]
    on_session: Callable[[TKOSession], None]


class TKOProtocol:
    """The ADAPTIVE transport protocol object on one host."""

    def __init__(self, host: Host, synthesizer: Optional[TKOSynthesizer] = None) -> None:
        self.host = host
        self.synthesizer = synthesizer if synthesizer is not None else TKOSynthesizer()
        #: connection ids are per-protocol: they name per-session rng
        #: streams, so they must not depend on how many sessions other
        #: systems in the same process have created (run-to-run identity)
        self._conn_ids = itertools.count(1)
        self.sessions: Dict[int, TKOSession] = {}
        self._listeners: Dict[int, Listener] = {}
        self.frames_demuxed = 0
        self.frames_unclaimed = 0
        #: protocol graph layers below this protocol (outermost first)
        self.layers: List["PassthroughLayer"] = []
        host.register_protocol_entry(self.handle_frame)

    # ------------------------------------------------------------------
    # session creation
    # ------------------------------------------------------------------
    def create_session(
        self,
        cfg: SessionConfig,
        remote_host: str,
        remote_port: int,
        local_port: Optional[int] = None,
        group: Optional[str] = None,
        members: Optional[list] = None,
        **callbacks,
    ) -> TKOSession:
        """Active open: synthesize, bind ports, return the session.

        Callers then invoke :meth:`TKOSession.connect`; for implicit
        configurations that is immediate and the first ``send`` may follow
        in the same event.
        """
        port = local_port if local_port is not None else self.host.ports.ephemeral_port()
        conn_id = next(self._conn_ids)
        session = self.synthesizer.instantiate(
            self.host,
            cfg,
            conn_id,
            port,
            remote_host,
            remote_port,
            group=group,
            members=members,
            protocol=self,
            **callbacks,
        )
        if cfg.delivery == "multicast":
            # member ACKs arrive from many hosts: a wildcard bind catches them
            self.host.ports.listen(port, session)
        else:
            self.host.ports.connect(port, remote_host, remote_port, session)
        self.sessions[conn_id] = session
        if _AUDIT.enabled:
            _AUDIT.session_created(session)
        return session

    def listen(
        self,
        port: int,
        cfg_factory: Callable[[PDU, Frame], SessionConfig],
        on_session: Callable[[TKOSession], None],
    ) -> None:
        """Register a passive open.

        ``cfg_factory`` maps the opening PDU (SYN options or the implicit
        config piggybacked on the first DATA) to the local configuration —
        this is where MANTTS' responder-side Stage II hooks in.
        """
        listener = Listener(port, cfg_factory, on_session)
        self._listeners[port] = listener
        self.host.ports.listen(port, listener)

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)
        self.host.ports.release(port)

    def unlisten_all(self) -> None:
        """Drop every passive-open registration (host teardown)."""
        for port in list(self._listeners):
            self.unlisten(port)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def handle_frame(self, frame: Frame) -> None:
        """NIC entry: walk the graph upward, demultiplex to the owner."""
        pdu = frame.payload
        if not isinstance(pdu, PDU):
            self.frames_unclaimed += 1
            return
        cost = DEMUX_COST + self._ingress_cost(frame)
        self.host.cpu.submit(cost, self._dispatch, pdu, frame)

    def _dispatch(self, pdu: PDU, frame: Frame) -> None:
        # Owner lookup happens *after* the demux CPU charge: two arrivals
        # racing a passive open must both see any binding the first created.
        owner = self.host.ports.demux(pdu.dst_port, frame.src, pdu.src_port)
        if isinstance(owner, TKOSession):
            self.frames_demuxed += 1
            owner.handle_frame(pdu, frame)
            return
        if isinstance(owner, Listener):
            self._accept(owner, pdu, frame)
            return
        self.frames_unclaimed += 1

    def _accept(self, listener: Listener, pdu: PDU, frame: Frame) -> None:
        """Passive session creation on SYN, implicitly-configured DATA, or
        a network-monitor PROBE (which must be answerable cold)."""
        if pdu.ptype not in (PduType.SYN, PduType.DATA, PduType.PROBE):
            self.frames_unclaimed += 1
            return
        cfg = listener.cfg_factory(pdu, frame)
        conn_id = next(self._conn_ids)
        session = self.synthesizer.instantiate(
            self.host,
            cfg,
            conn_id,
            listener.port,
            frame.src,
            pdu.src_port,
            protocol=self,
        )
        self.host.ports.connect(listener.port, frame.src, pdu.src_port, session)
        self.sessions[conn_id] = session
        if _AUDIT.enabled:
            # a QoS auditor watching this demux tuple attaches its
            # delivery-side observer before the opening PDU is processed
            _AUDIT.session_created(session)
        self.frames_demuxed += 1
        session.context.connection.passive_open(pdu)
        if pdu.ptype is PduType.DATA:
            # Implicitly-opened sessions sync their receive window to the
            # opening PDU's sequence number: a receiver that joins an
            # in-progress stream (late multicast member) starts there
            # rather than waiting forever for sequence 0.
            session.recv_window.rcv_nxt = pdu.seq
        listener.on_session(session)
        if pdu.ptype in (PduType.DATA, PduType.PROBE):
            # the opening PDU carries data (or wants an echo): process it
            # as a normal arrival
            session.handle_frame(pdu, frame)

    # ------------------------------------------------------------------
    def session_closed(self, session: TKOSession) -> None:
        """Callback from sessions on teardown: release demux bindings."""
        self.sessions.pop(session.conn_id, None)
        if session.cfg.delivery == "multicast":
            if session.local_port not in self._listeners:
                self.host.ports.release(session.local_port)
        else:
            self.host.ports.release(
                session.local_port, session.remote_host, session.remote_port
            )

    # ------------------------------------------------------------------
    # protocol graph operations
    # ------------------------------------------------------------------
    def insert_layer(self, layer: "PassthroughLayer") -> None:
        """Add a graph layer below the transport (outermost position).

        Layers are live in the data path: every outgoing frame is
        encapsulated through them (header bytes on the wire, per-layer CPU
        cost, and — for non-zero-copy layers — a payload copy per
        boundary), and every incoming frame is decapsulated.  This is the
        §4.2.1 protocol-graph "insert/delete protocol objects" operation.
        """
        self.layers.append(layer)

    def remove_layer(self, layer: "PassthroughLayer") -> None:
        self.layers.remove(layer)

    def egress(self, frame: Frame, extra_instructions: float = 0.0) -> None:
        """Send-side graph traversal, then hand the frame to the NIC."""
        cost = extra_instructions
        for layer in self.layers:
            frame.size += layer.header_bytes
            cost += layer.instr_cost(self.host.cpu.costs, frame, self.host.copy_meter)
        self.host.transmit(frame, extra_instructions=cost)

    def _ingress_cost(self, frame: Frame) -> float:
        """Receive-side graph traversal cost (headers stripped innermost-last)."""
        cost = 0.0
        for layer in reversed(self.layers):
            cost += layer.instr_cost(self.host.cpu.costs, frame, self.host.copy_meter)
        return cost


class PassthroughLayer:
    """A generic protocol-graph layer.

    In ``zero_copy`` mode it pushes/pops a header on the TKO message
    (O(1), no payload traffic); in naive mode it eagerly copies the
    payload at the boundary, the classic layered-implementation overhead
    (§2.1(A): "poorly layered architectures").

    When installed in a :class:`TKOProtocol`'s graph the layer is live in
    the data path: :meth:`instr_cost` is charged per frame in each
    direction (fixed bookkeeping plus, for naive layers, a per-byte copy
    recorded on the host's copy meter).
    """

    #: fixed instructions per frame per direction
    FIXED_COST = 200.0

    def __init__(self, name: str, header_bytes: int = 8, zero_copy: bool = True) -> None:
        self.name = name
        self.header_bytes = header_bytes
        self.zero_copy = zero_copy
        self.pdus_seen = 0

    def instr_cost(self, costs, frame: Frame, meter) -> float:
        """Per-frame traversal cost; naive layers also copy the payload."""
        self.pdus_seen += 1
        total = self.FIXED_COST
        if not self.zero_copy:
            payload = frame.payload
            nbytes = payload.data_size if isinstance(payload, PDU) else frame.size
            total += costs.per_byte_copy * nbytes
            meter.record(nbytes)
        return total

    def encapsulate(self, message):
        from repro.tko.message import Header

        self.pdus_seen += 1
        if not self.zero_copy:
            message = message.copy_through()
        message.push(Header(self.name, self.header_bytes))
        return message

    def decapsulate(self, message):
        self.pdus_seen += 1
        if not self.zero_copy:
            message = message.copy_through()
        message.pop()
        return message
