"""TKO_Session: the junction of protocol and session architectures (§4.2.1).

A session encapsulates the context needed to process one association's
PDUs — addresses, sequence state, RTT estimate — and drives them through
the mechanism pipeline installed in its :class:`~repro.tko.context.TKOContext`.
The session is deliberately *generic*: every protocol behaviour (when to
retransmit, whether to buffer out of order, how to acknowledge, whether to
handshake) lives in the pluggable mechanisms, which is exactly what makes
run-time reconfiguration (:meth:`segue`) possible.

The per-PDU data path itself lives in :mod:`repro.tko.executor`: a session
holds the association state (send queue, windows, RTT, stats, lifecycle)
and delegates send/receive processing to its executor — either the
retained interpreted reference path or the compiled flat pipeline
(:mod:`repro.tko.pipeline`).  This module keeps everything that is *state
machine*, not *hot path*.

Send path:   app message → fragmentation → sequence assignment →
             transmission control gate → recovery bookkeeping (+FEC parity)
             → checksum attach → CPU charge → frame → network.
Receive path: frame → CPU charge → detection verify → type dispatch →
             receive window (ordering/dup policy) → reassembly →
             jitter playout → application callback.

Sessions are substrate-blind: "network" above is whatever fabric the
host is attached to — the simulated :class:`~repro.netsim.network.
Network` or a real transport backend's fabric (``repro.transport``).
Path MTU, the per-session RNG stream, and frame hand-off all go through
the same surface; on a real substrate the fabric serializes frames with
the versioned wire codec and owns the pooled PDU's wire reference from
that point on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.host.nic import Host
from repro.netsim.frame import Frame
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerWheel
from repro.tko.config import SessionConfig
from repro.tko.context import TKOContext
from repro.tko.executor import build_executor
from repro.tko.interpreter import NETWORK_HEADER_BYTES, CostModel
from repro.tko.pdu import PDU, PDU_POOL, PduType
from repro.tko.state import (
    Reassembler,
    ReceiveWindow,
    RttEstimator,
    SendEntry,
    SenderState,
    SessionStats,
)
from repro.tko.util import noop

#: conservative transport-header allowance when deriving segment size
_HEADER_ALLOWANCE = 32


class TKOSession:
    """One transport association on one host."""

    def __init__(
        self,
        host: Host,
        cfg: SessionConfig,
        context: TKOContext,
        conn_id: int,
        local_port: int,
        remote_host: str,
        remote_port: int,
        on_deliver: Optional[Callable[[bytes, dict], None]] = None,
        on_connected: Optional[Callable[[], None]] = None,
        on_closed: Optional[Callable[[], None]] = None,
        on_open_failed: Optional[Callable[[str], None]] = None,
        protocol: Optional[Any] = None,
        pipeline_specs: Optional[dict] = None,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.cfg = cfg
        self.context = context
        self.conn_id = conn_id
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.on_deliver = on_deliver
        self.on_connected = on_connected
        self.on_closed = on_closed
        self.on_open_failed = on_open_failed
        self.on_signalling: Optional[Callable[[PDU], None]] = None
        self.protocol = protocol

        self.state = SenderState()
        self.recv_window = ReceiveWindow()
        self.reassembler = Reassembler()
        self.rtt = RttEstimator(cfg.rto_initial, cfg.rto_min)
        self.stats = SessionStats()
        self.stats.opened_at = self.sim.now
        self.timers = TimerWheel(self.sim)
        self.rng = host.network.rng.stream(f"session:{host.name}:{conn_id}")
        self.copy_meter = host.copy_meter

        #: observers notified of protocol events (UNITES tracing attaches
        #: here); each is called as observer(event: str, session, **details)
        self.observers: list = []
        self._send_queue: deque[PDU] = deque()
        self._pump_event = None
        self._closing = False
        self._closed = False
        self._paused = False
        self._drain_waiters: list = []
        self._pdu_buffers: Dict[int, Any] = {}
        self._pooling = False

        self.executor = build_executor(self)
        self._gap_timer = self.timers.timer(
            self.executor.gap_timeout, interval=cfg.gap_timeout
        )
        #: retained run-time charge oracle; the compiled pipeline must stay
        #: bit-identical to it (reports, tests, and examples read it)
        self.cost_model = CostModel(self)
        context.bind(self)
        self.executor.prime(pipeline_specs)
        self._refresh_pooling()

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def connected(self) -> bool:
        return self.context.connection.connected and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def _notify(self, event: str, **details) -> None:
        if not self.observers:
            return
        for observer in self.observers:
            observer(event, self, **details)

    def advertised_window(self) -> int:
        """Receive window advertised on outgoing ACKs: bounded by both the
        configured window and current buffer-pool pressure."""
        buffered = len(self.recv_window.buffer)
        pool_share = int((1.0 - self.host.buffers.fill_fraction) * self.cfg.window)
        return max(0, min(self.cfg.window - buffered, pool_share))

    # ------------------------------------------------------------------
    # application API (hot paths delegate to the executor)
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Begin establishment; the connected callback fires on success."""
        self.context.connection.active_open()

    def send(self, data: bytes) -> int:
        """Queue an application message; returns its message id.

        The message is fragmented to the path segment size, each fragment
        gets a sequence number immediately (queue order is wire order), and
        the transmission-control pump releases fragments as window/pacing
        allow.
        """
        return self.executor.send(data)

    def pump(self) -> None:
        """Release queued DATA PDUs as transmission control allows."""
        self.executor.pump()

    def handle_frame(self, pdu: PDU, frame: Frame) -> None:
        """Entry from the protocol demultiplexer (charges CPU, then runs)."""
        self.executor.handle_frame(pdu, frame)

    def retransmit_entry(self, entry: SendEntry) -> None:
        """Re-emit one unacknowledged PDU (recovery mechanisms call this)."""
        self.executor.retransmit_entry(entry)

    def _handle_ack(self, pdu: PDU, from_host: str) -> None:
        # kept as a real method (not a prebound alias) so tests and tools
        # can shadow it on the instance; the executor routes through here
        self.executor.handle_ack(pdu, from_host)

    def _finalize_ack(self, seq: int) -> None:
        self.executor.finalize_ack(seq)

    def _transmit(self, pdu: PDU, control: bool) -> None:
        self.executor.transmit(pdu, control)

    # ------------------------------------------------------------------
    # quiesce (mid-stream renegotiation support)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Gate the transmission pump: no *new* DATA PDUs leave the queue.

        Recovery keeps retransmitting already-outstanding PDUs (so a
        :meth:`drain` can complete across loss) and ACK processing runs
        normally; only first transmissions are held.  Queued messages are
        neither lost nor reordered — they flow the moment :meth:`resume`
        reopens the gate.
        """
        if self._paused:
            return
        self._paused = True
        self._notify("pause")

    def resume(self) -> None:
        """Reopen the transmission pump and release anything queued."""
        if not self._paused:
            return
        self._paused = False
        self._notify("resume")
        if not self._closed:
            self.pump()

    def drain(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once no PDU is outstanding (unACKed).

        With the pump paused this quiesces the wire: everything sent has
        been acknowledged and everything else is still queued locally, so
        a configuration swap cannot lose or double-deliver a PDU.
        """
        if not self.state.outstanding:
            callback()
            return
        self._drain_waiters.append(callback)

    def _check_drained(self) -> None:
        if self._drain_waiters and not self.state.outstanding:
            waiters, self._drain_waiters = self._drain_waiters, []
            for cb in waiters:
                cb()

    def close(self) -> None:
        """Graceful close: drain queued and unacknowledged data, flush any
        partial FEC group, then run the connection termination exchange."""
        if self._closed or self._closing:
            return
        self._closing = True
        self._maybe_finish_close()

    def abort(self, reason: str) -> None:
        """Non-graceful termination: buffered data is abandoned."""
        if self._closed:
            return
        self.stats.aborted = reason
        self._notify("abort", reason=reason)
        self._teardown()
        if self.on_open_failed is not None and self.stats.established_at is None:
            self.on_open_failed(reason)
        elif self.on_closed is not None:
            self.on_closed()

    # ------------------------------------------------------------------
    # reconfiguration (segue)
    # ------------------------------------------------------------------
    def segue(self, slot: str, replacement) -> None:
        """Swap one mechanism at run time (Figure 5's segue operation).

        Static templates are "guaranteed not to change" (§4.2.2): their
        inline-expanded code cannot be rebound, so segue is refused.  Only
        the swapped slot's stage is recompiled; ``adopt()`` inside
        ``context.segue`` has already transferred the mechanism state.
        """
        if self.cfg.binding == "static":
            raise RuntimeError(
                "session was customized as a static template; segue requires "
                "a reconfigurable or dynamic binding"
            )
        self.context.segue(slot, replacement)
        self.executor.refresh_slot(slot)
        self._refresh_pooling()
        self.stats.reconfigurations += 1
        self._notify("segue", slot=slot, mechanism=replacement.name)
        # reconfiguration is not free: charge the rebinding bookkeeping
        self.host.cpu.submit(2000.0, noop)
        self.pump()

    def update_config(self, cfg: SessionConfig) -> None:
        """Install a revised parameter set (same mechanisms, new numbers)."""
        self.cfg = cfg
        self.cost_model = CostModel(self)
        self.executor.on_update_config()
        self._refresh_pooling()

    def repipeline(self, slot: str) -> None:
        """One mechanism's compiled cost changed in place (e.g. multicast
        membership altered the delivery stage); re-derive that stage."""
        self.executor.refresh_slot(slot, reason="repipeline")

    def recheck_acks(self) -> None:
        """Re-evaluate outstanding completion (multicast members left)."""
        delivery = self.context.delivery
        pending = getattr(delivery, "pending_complete", None)
        if pending is None:
            return
        for seq in list(self.state.outstanding):
            if pending(seq):
                self._finalize_ack(seq)
        self.pump()

    def _refresh_pooling(self) -> None:
        """Decide whether DATA/ACK shells may come from the free list.

        Pooling needs every reference-holder accounted for; multicast
        delivery (one shell on several wires with per-member completion)
        and FEC senders (groups park shells until parity is emitted) are
        not worth the bookkeeping, so those configurations opt out.
        """
        eligible = (
            self.executor.pools_pdus
            and self.context.delivery.name == "unicast"
            and getattr(self.context.recovery, "POOL_SAFE", True)
        )
        if self._pooling and not eligible:
            # queued shells were acquired under the old rules: demote them
            # to plain PDUs so nothing ever recycles them
            for pdu in self._send_queue:
                pdu.pooled = False
        self._pooling = eligible

    # ------------------------------------------------------------------
    # PDU construction & emission
    # ------------------------------------------------------------------
    def make_pdu(self, ptype: PduType) -> PDU:
        if self._pooling and (ptype is PduType.DATA or ptype is PduType.ACK):
            return PDU_POOL.acquire(
                ptype,
                self.conn_id,
                src_port=self.local_port,
                dst_port=self.remote_port,
                compact=self.cfg.compact_headers,
            )
        return PDU(
            ptype,
            self.conn_id,
            src_port=self.local_port,
            dst_port=self.remote_port,
            compact=self.cfg.compact_headers,
        )

    def segment_size(self) -> int:
        """Max user bytes per DATA PDU for the current path.

        FEC configurations reserve extra headroom: a PARITY PDU is as
        large as the biggest data shard in its group *plus* per-shard
        group metadata, and it must still fit the path MTU.
        """
        if self.cfg.segment_size is not None:
            return self.cfg.segment_size
        dst = self.context.delivery.destinations()[0]
        mtu = self.host.network.path_mtu(self.host.name, dst) or 1500
        headroom = _HEADER_ALLOWANCE
        if self.cfg.recovery.startswith("fec"):
            from repro.mechanisms.fec import META_BYTES_PER_SHARD

            headroom += META_BYTES_PER_SHARD * self.cfg.fec_k
        if self.protocol is not None:
            # encapsulation added by graph layers below the transport
            headroom += sum(l.header_bytes for l in self.protocol.layers)
        return max(64, mtu - NETWORK_HEADER_BYTES - headroom)

    def emit_control(self, pdu: PDU) -> None:
        """Transmit on the out-of-band control path (Figure 3)."""
        self.executor.transmit(pdu, True)

    def emit_pdu(self, pdu: PDU) -> None:
        """Transmit a non-tracked PDU (ACKs, probes) on the data path."""
        self.executor.transmit(pdu, False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def notify_connected(self) -> None:
        if self.stats.established_at is None:
            self.stats.established_at = self.now
            self._notify("connected")
            if self.on_connected is not None:
                self.on_connected()
        self.pump()

    def notify_closed(self) -> None:
        if self._closed:
            return
        self._notify("close")
        self._teardown()
        if self.on_closed is not None:
            self.on_closed()

    def notify_open_failed(self, reason: str) -> None:
        self.stats.aborted = reason
        self._notify("abort", reason=reason)
        self._teardown()
        if self.on_open_failed is not None:
            self.on_open_failed(reason)

    def _maybe_finish_close(self) -> None:
        if not self._closing or self._closed:
            return
        if self._send_queue or self.state.outstanding:
            return
        flush = getattr(self.context.recovery, "flush", None)
        if flush is not None:
            for extra in flush():
                self._transmit(extra, control=False)
        self.context.connection.close()

    def _teardown(self) -> None:
        self._closed = True
        self.stats.closed_at = self.now
        # a drain can no longer complete; its initiator learns the outcome
        # from the session's close/abort callbacks instead
        self._drain_waiters.clear()
        # an abort abandons data still queued or awaiting acknowledgement;
        # the retransmission queue's creator references die with it, or
        # the pool leaks one shell per unacked PDU (hostile paths abort
        # sessions with full windows — see the chaos acceptance suite)
        for entry in self.state.outstanding.values():
            if entry.pdu.pooled:
                entry.pdu.release()
        self.state.outstanding.clear()
        for pdu in self._send_queue:
            if pdu.pooled:
                pdu.release()
        self._send_queue.clear()
        self.timers.cancel_all()
        if self._pump_event is not None:
            self.sim.cancel(self._pump_event)
            self._pump_event = None
        self.context.teardown()
        for buf in self._pdu_buffers.values():
            self.host.buffers.free(buf)
        self._pdu_buffers.clear()
        if self.protocol is not None:
            self.protocol.session_closed(self)
