"""TKO_Session: the junction of protocol and session architectures (§4.2.1).

A session encapsulates the context needed to process one association's
PDUs — addresses, sequence state, RTT estimate — and drives them through
the mechanism pipeline installed in its :class:`~repro.tko.context.TKOContext`.
The session is deliberately *generic*: every protocol behaviour (when to
retransmit, whether to buffer out of order, how to acknowledge, whether to
handshake) lives in the pluggable mechanisms, which is exactly what makes
run-time reconfiguration (:meth:`segue`) possible.

Send path:   app message → fragmentation → sequence assignment →
             transmission control gate → recovery bookkeeping (+FEC parity)
             → checksum attach → CPU charge → frame → network.
Receive path: frame → CPU charge → detection verify → type dispatch →
             receive window (ordering/dup policy) → reassembly →
             jitter playout → application callback.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.host.nic import Host
from repro.netsim.frame import Frame, PRIO_CONTROL, PRIO_HIGH, PRIO_NORMAL
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerWheel
from repro.tko.config import SessionConfig
from repro.tko.context import TKOContext
from repro.tko.interpreter import NETWORK_HEADER_BYTES, CostModel
from repro.tko.message import TKOMessage
from repro.tko.pdu import PDU, PduType
from repro.tko.state import (
    Reassembler,
    ReceiveWindow,
    RttEstimator,
    SendEntry,
    SenderState,
    SessionStats,
)
from repro.unites.obs.telemetry import TELEMETRY as _TELEMETRY

_msg_counter = itertools.count(1)

#: conservative transport-header allowance when deriving segment size
_HEADER_ALLOWANCE = 32


class TKOSession:
    """One transport association on one host."""

    def __init__(
        self,
        host: Host,
        cfg: SessionConfig,
        context: TKOContext,
        conn_id: int,
        local_port: int,
        remote_host: str,
        remote_port: int,
        on_deliver: Optional[Callable[[bytes, dict], None]] = None,
        on_connected: Optional[Callable[[], None]] = None,
        on_closed: Optional[Callable[[], None]] = None,
        on_open_failed: Optional[Callable[[str], None]] = None,
        protocol: Optional[Any] = None,
    ) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        self.cfg = cfg
        self.context = context
        self.conn_id = conn_id
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.on_deliver = on_deliver
        self.on_connected = on_connected
        self.on_closed = on_closed
        self.on_open_failed = on_open_failed
        self.on_signalling: Optional[Callable[[PDU], None]] = None
        self.protocol = protocol

        self.state = SenderState()
        self.recv_window = ReceiveWindow()
        self.reassembler = Reassembler()
        self.rtt = RttEstimator(cfg.rto_initial, cfg.rto_min)
        self.stats = SessionStats()
        self.stats.opened_at = self.sim.now
        self.timers = TimerWheel(self.sim)
        self.rng = host.network.rng.stream(f"session:{host.name}:{conn_id}")
        self.copy_meter = host.copy_meter

        #: observers notified of protocol events (UNITES tracing attaches
        #: here); each is called as observer(event: str, session, **details)
        self.observers: list = []
        self._send_queue: deque[PDU] = deque()
        self._pump_event = None
        self._closing = False
        self._closed = False
        self._pdu_buffers: Dict[int, Any] = {}
        self._gap_timer = self.timers.timer(self._gap_timeout, interval=cfg.gap_timeout)

        self.cost_model = CostModel(self)
        context.bind(self)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def connected(self) -> bool:
        return self.context.connection.connected and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    def _notify(self, event: str, **details) -> None:
        if not self.observers:
            return
        for observer in self.observers:
            observer(event, self, **details)

    def advertised_window(self) -> int:
        """Receive window advertised on outgoing ACKs: bounded by both the
        configured window and current buffer-pool pressure."""
        buffered = len(self.recv_window.buffer)
        pool_share = int((1.0 - self.host.buffers.fill_fraction) * self.cfg.window)
        return max(0, min(self.cfg.window - buffered, pool_share))

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Begin establishment; the connected callback fires on success."""
        self.context.connection.active_open()

    def send(self, data: bytes) -> int:
        """Queue an application message; returns its message id.

        The message is fragmented to the path segment size, each fragment
        gets a sequence number immediately (queue order is wire order), and
        the transmission-control pump releases fragments as window/pacing
        allow.
        """
        if self._closed or self._closing:
            raise RuntimeError("session is closed")
        msg_id = next(_msg_counter)
        with _TELEMETRY.span("session-send", "tko", msg_id=msg_id,
                             nbytes=len(data), conn=self.conn_id):
            self.stats.msgs_sent += 1
            msg = TKOMessage(data, meter=self.copy_meter)
            seg = self.segment_size()
            total = msg.data_length
            frag_count = max(1, -(-total // seg))
            piggyback = self.context.connection.piggyback_config()
            for i in range(frag_count):
                part = msg.take(min(seg, msg.data_length)) if total else TKOMessage(b"", meter=self.copy_meter)
                pdu = self.make_pdu(PduType.DATA)
                pdu.seq = self.state.next_seq()
                pdu.msg_id = msg_id
                pdu.frag_index = i
                pdu.frag_count = frag_count
                pdu.message = part
                if piggyback is not None:
                    pdu.options["cfg"] = piggyback
                    piggyback = None
                self._send_queue.append(pdu)
            self.pump()
        return msg_id

    def close(self) -> None:
        """Graceful close: drain queued and unacknowledged data, flush any
        partial FEC group, then run the connection termination exchange."""
        if self._closed or self._closing:
            return
        self._closing = True
        self._maybe_finish_close()

    def abort(self, reason: str) -> None:
        """Non-graceful termination: buffered data is abandoned."""
        if self._closed:
            return
        self.stats.aborted = reason
        self._notify("abort", reason=reason)
        self._teardown()
        if self.on_open_failed is not None and self.stats.established_at is None:
            self.on_open_failed(reason)
        elif self.on_closed is not None:
            self.on_closed()

    # ------------------------------------------------------------------
    # reconfiguration (segue)
    # ------------------------------------------------------------------
    def segue(self, slot: str, replacement) -> None:
        """Swap one mechanism at run time (Figure 5's segue operation).

        Static templates are "guaranteed not to change" (§4.2.2): their
        inline-expanded code cannot be rebound, so segue is refused.
        """
        if self.cfg.binding == "static":
            raise RuntimeError(
                "session was customized as a static template; segue requires "
                "a reconfigurable or dynamic binding"
            )
        self.context.segue(slot, replacement)
        self.stats.reconfigurations += 1
        self._notify("segue", slot=slot, mechanism=replacement.name)
        # reconfiguration is not free: charge the rebinding bookkeeping
        self.host.cpu.submit(2000.0, _noop)
        self.pump()

    def update_config(self, cfg: SessionConfig) -> None:
        """Install a revised parameter set (same mechanisms, new numbers)."""
        self.cfg = cfg
        self.cost_model = CostModel(self)

    def recheck_acks(self) -> None:
        """Re-evaluate outstanding completion (multicast members left)."""
        delivery = self.context.delivery
        pending = getattr(delivery, "pending_complete", None)
        if pending is None:
            return
        for seq in list(self.state.outstanding):
            if pending(seq):
                self._finalize_ack(seq)
        self.pump()

    # ------------------------------------------------------------------
    # PDU construction & emission
    # ------------------------------------------------------------------
    def make_pdu(self, ptype: PduType) -> PDU:
        return PDU(
            ptype,
            self.conn_id,
            src_port=self.local_port,
            dst_port=self.remote_port,
            compact=self.cfg.compact_headers,
        )

    def segment_size(self) -> int:
        """Max user bytes per DATA PDU for the current path.

        FEC configurations reserve extra headroom: a PARITY PDU is as
        large as the biggest data shard in its group *plus* per-shard
        group metadata, and it must still fit the path MTU.
        """
        if self.cfg.segment_size is not None:
            return self.cfg.segment_size
        dst = self.context.delivery.destinations()[0]
        mtu = self.host.network.path_mtu(self.host.name, dst) or 1500
        headroom = _HEADER_ALLOWANCE
        if self.cfg.recovery.startswith("fec"):
            from repro.mechanisms.fec import META_BYTES_PER_SHARD

            headroom += META_BYTES_PER_SHARD * self.cfg.fec_k
        if self.protocol is not None:
            # encapsulation added by graph layers below the transport
            headroom += sum(l.header_bytes for l in self.protocol.layers)
        return max(64, mtu - NETWORK_HEADER_BYTES - headroom)

    def emit_control(self, pdu: PDU) -> None:
        """Transmit on the out-of-band control path (Figure 3)."""
        self._transmit(pdu, control=True)

    def emit_pdu(self, pdu: PDU) -> None:
        """Transmit a non-tracked PDU (ACKs, probes) on the data path."""
        self._transmit(pdu, control=False)

    def pump(self) -> None:
        """Release queued DATA PDUs as transmission control allows."""
        if self._closed or not self.context.connection.connected:
            return
        tx = self.context.transmission
        while self._send_queue and tx.can_send():
            gap = tx.send_gap()
            if gap > 0:
                self._schedule_pump(gap)
                return
            pdu = self._send_queue.popleft()
            self._send_data(pdu)
        self._maybe_finish_close()

    def _schedule_pump(self, delay: float) -> None:
        if self._pump_event is not None and not self._pump_event.cancelled:
            return
        self._pump_event = self.sim.schedule(delay, self._pump_fire)

    def _pump_fire(self) -> None:
        self._pump_event = None
        self.pump()

    def _track_outstanding(self) -> bool:
        return (
            self.context.recovery.retransmits
            or self.cfg.transmission
            in ("stop-and-wait", "sliding-window", "window-rate", "tcp-aimd")
        )

    def _send_data(self, pdu: PDU) -> None:
        pdu.timestamp = self.now
        if self._track_outstanding():
            self.state.track(SendEntry(pdu, first_sent=self.now, last_sent=self.now))
        recovery = self.context.recovery
        if _TELEMETRY.enabled:
            recovery.count_invoke("encode")
            with recovery.invoke_span("encode"):
                extras = list(recovery.on_send(pdu))
            self.context.transmission.count_invoke("on_send")
        else:
            extras = list(recovery.on_send(pdu))
        self.context.transmission.on_send(pdu)
        self._transmit(pdu, control=False)
        for extra in extras:
            self._transmit(extra, control=False)

    def retransmit_entry(self, entry: SendEntry) -> None:
        """Re-emit one unacknowledged PDU (recovery mechanisms call this)."""
        if self._closed:
            return
        entry.retries += 1
        entry.last_sent = self.now
        self.stats.retransmissions += 1
        self._notify("retransmit", seq=entry.pdu.seq, retries=entry.retries)
        clone = entry.pdu.retransmit_clone()
        self._transmit(clone, control=False)

    def _transmit(self, pdu: PDU, control: bool) -> None:
        if self._closed:
            return
        if _TELEMETRY.enabled:
            self.context.detection.count_invoke("attach")
        self.context.detection.attach(pdu)
        if pdu.ptype is PduType.DATA:
            critical, deferred = self.cost_model.send_charge(pdu)
            dst = self.context.delivery.frame_dst()
            priority = PRIO_HIGH if self.cfg.priority else PRIO_NORMAL
            self.stats.data_bytes_sent += pdu.data_size
        else:
            critical = self.cost_model.control_charge(pdu)
            deferred = 0.0
            dst = self.remote_host
            priority = PRIO_CONTROL if (control or pdu.is_control) else (
                PRIO_HIGH if self.cfg.priority else PRIO_NORMAL
            )
        frame = Frame(
            src=self.host.name,
            dst=dst,
            size=pdu.wire_size + NETWORK_HEADER_BYTES,
            payload=pdu,
            priority=priority,
            created_at=self.now,
        )
        self.stats.pdus_sent += 1
        self.stats.wire_bytes_sent += frame.size
        self._notify("pdu-sent", pdu=pdu, size=frame.size)
        if self.protocol is not None:
            # descend the protocol graph (any installed layers) to the NIC
            self.protocol.egress(frame, extra_instructions=critical)
        else:
            self.host.transmit(frame, extra_instructions=critical)
        if deferred > 0.0:
            # trailer checksum: computed during serialization — CPU burns
            # the cycles but the frame does not wait for them
            self.host.cpu.submit(deferred, _noop)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def handle_frame(self, pdu: PDU, frame: Frame) -> None:
        """Entry from the protocol demultiplexer (charges CPU, then runs)."""
        if self._closed:
            return
        deferred = 0.0
        if pdu.ptype in (PduType.DATA, PduType.PARITY):
            cost, deferred = self.cost_model.recv_charge(pdu)
        else:
            cost = self.cost_model.control_charge(pdu)
        self.host.cpu.submit(cost, self._process, pdu, frame)
        if deferred > 0.0:
            # trailer checksum verified incrementally during reception: the
            # CPU burns the cycles, but the PDU's upward path (submitted
            # first) does not wait for them
            self.host.cpu.submit(deferred, _noop)

    def _process(self, pdu: PDU, frame: Frame) -> None:
        if self._closed:
            return
        self.stats.pdus_received += 1
        self._notify("pdu-received", pdu=pdu, corrupted=frame.corrupted)
        if _TELEMETRY.enabled:
            self.context.detection.count_invoke("verify")
        if not self.context.detection.verify(pdu, frame.corrupted):
            self._notify("pdu-rejected", pdu=pdu)
            return
        t = pdu.ptype
        if t is PduType.DATA:
            self._handle_data(pdu)
        elif t is PduType.ACK:
            self._handle_ack(pdu, frame.src)
        elif t is PduType.PARITY:
            for rebuilt in self.context.recovery.on_receive_repair(pdu):
                self._handle_data(rebuilt)
        elif t is PduType.PROBE:
            reply = self.make_pdu(PduType.PROBE_REPLY)
            reply.timestamp = pdu.timestamp
            self.emit_control(reply)
        elif t in (PduType.CONFIG, PduType.CONFIG_ACK, PduType.PROBE_REPLY):
            if self.on_signalling is not None:
                self.on_signalling(pdu)
        else:
            self.context.connection.handle_control(pdu)

    def _handle_data(self, pdu: PDU) -> None:
        ctx = self.context
        buf = self.host.buffers.alloc(max(1, pdu.wire_size))
        if buf is None:
            self.stats.buffer_drops += 1
            return
        self._pdu_buffers[pdu.id] = buf
        ctx.recovery.note_data_received(pdu)
        seqm = ctx.sequencing
        deliverable, accepted, gap = self.recv_window.accept(
            pdu,
            accept_ooo=ctx.recovery.accept_out_of_order,
            ordered=seqm.ordered,
            dedup=seqm.dedup,
        )
        if gap:
            ctx.ack.on_gap(pdu)
            self._arm_gap_timer()
        if accepted:
            if _TELEMETRY.enabled:
                ctx.ack.count_invoke("on_data")
            ctx.ack.on_data(pdu)
        else:
            # discarded (GBN out-of-order / duplicate): release its buffer
            self._release_buffer(pdu)
        for out in deliverable:
            self._deliver_pdu(out)
        # a data arrival can complete an FEC group whose parity came first
        repair = getattr(ctx.recovery, "repair_opportunity", None)
        if repair is not None:
            for rebuilt in repair(pdu):
                self._handle_data(rebuilt)

    def _release_buffer(self, pdu: PDU) -> None:
        buf = self._pdu_buffers.pop(pdu.id, None)
        if buf is not None:
            self.host.buffers.free(buf)

    def _deliver_pdu(self, pdu: PDU) -> None:
        frags = self.reassembler.add(pdu)
        self._release_buffer(pdu)
        if frags is None:
            return
        combined = TKOMessage((), meter=self.copy_meter)
        for f in frags:
            if f.message is not None:
                combined.concat(f.message)
        first = frags[0]
        if _TELEMETRY.enabled:
            self.context.jitter.count_invoke("release_delay")
        delay = self.context.jitter.release_delay(first)
        if delay > 0:
            self.sim.schedule(delay, self._deliver_app, combined, first)
        else:
            self._deliver_app(combined, first)

    def _deliver_app(self, message: TKOMessage, first: PDU) -> None:
        if self._closed:
            return
        data = message.materialize()  # the one app-boundary copy
        self.host.cpu.submit(
            self.host.cpu.costs.per_byte_copy * len(data) + self.host.cpu.costs.context_switch,
            _noop,
        )
        latency = self.now - first.timestamp if first.timestamp else 0.0
        self.stats.msgs_delivered += 1
        self.stats.data_bytes_delivered += len(data)
        self.stats.record_latency(latency)
        self._notify("deliver", msg_id=first.msg_id, nbytes=len(data),
                     latency=latency)
        if self.on_deliver is not None:
            self.on_deliver(
                data,
                {
                    "msg_id": first.msg_id,
                    "sent_at": first.timestamp,
                    "latency": latency,
                    "reconstructed": bool(first.options.get("fec_reconstructed")),
                },
            )

    # ------------------------------------------------------------------
    # acknowledgment accounting (sender side)
    # ------------------------------------------------------------------
    def _handle_ack(self, pdu: PDU, from_host: str) -> None:
        self.stats.acks_received += 1
        ctx = self.context
        if _TELEMETRY.enabled:
            ctx.transmission.count_invoke("on_ack")
            ctx.recovery.count_invoke("on_ack")
        ctx.transmission.on_ack(pdu)
        if pdu.ack is not None:
            for seq in [s for s in self.state.outstanding if s < pdu.ack]:
                if ctx.delivery.ack_complete(seq, from_host):
                    self._finalize_ack(seq)
        if pdu.sack:
            destinations = set(ctx.delivery.destinations())
            for seq in pdu.sack:
                entry = self.state.outstanding.get(seq)
                if entry is not None:
                    entry.sacked_by.add(from_host)
                    entry.sacked = entry.sacked_by >= destinations
        ctx.recovery.on_ack(pdu, from_host)
        self.pump()

    def _finalize_ack(self, seq: int) -> None:
        entry = self.state.release(seq)
        if entry is None:
            return
        if entry.retries == 0:  # Karn's rule: clean samples only
            self.rtt.update(self.now - entry.first_sent)
        else:
            self.rtt.note_progress()
        self._maybe_finish_close()

    # ------------------------------------------------------------------
    # gap skipping (ordered delivery without retransmission)
    # ------------------------------------------------------------------
    def _arm_gap_timer(self) -> None:
        ctx = self.context
        if ctx.recovery.retransmits or not ctx.sequencing.ordered:
            return
        if not self._gap_timer.armed:
            self._gap_timer.schedule(self.cfg.gap_timeout)

    def _gap_timeout(self) -> None:
        released = self.recv_window.skip_gap()
        if released:
            self.stats.gap_skips += 1
        for pdu in released:
            self._deliver_pdu(pdu)
        if self.recv_window.buffer:
            self._gap_timer.schedule(self.cfg.gap_timeout)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def notify_connected(self) -> None:
        if self.stats.established_at is None:
            self.stats.established_at = self.now
            self._notify("connected")
            if self.on_connected is not None:
                self.on_connected()
        self.pump()

    def notify_closed(self) -> None:
        if self._closed:
            return
        self._teardown()
        if self.on_closed is not None:
            self.on_closed()

    def notify_open_failed(self, reason: str) -> None:
        self.stats.aborted = reason
        self._notify("abort", reason=reason)
        self._teardown()
        if self.on_open_failed is not None:
            self.on_open_failed(reason)

    def _maybe_finish_close(self) -> None:
        if not self._closing or self._closed:
            return
        if self._send_queue or self.state.outstanding:
            return
        flush = getattr(self.context.recovery, "flush", None)
        if flush is not None:
            for extra in flush():
                self._transmit(extra, control=False)
        self.context.connection.close()

    def _teardown(self) -> None:
        self._closed = True
        self.stats.closed_at = self.now
        self.timers.cancel_all()
        if self._pump_event is not None:
            self.sim.cancel(self._pump_event)
            self._pump_event = None
        self.context.teardown()
        for buf in self._pdu_buffers.values():
            self.host.buffers.free(buf)
        self._pdu_buffers.clear()
        if self.protocol is not None:
            self.protocol.session_closed(self)


def _noop() -> None:
    """Target for CPU charges that have no functional follow-up."""
