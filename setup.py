"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (where pip cannot build the
PEP 660 editable wheel) can still do a development install via

    pip install -e . --no-build-isolation --no-use-pep517
    # or: python setup.py develop
"""

from setuptools import setup

setup()
